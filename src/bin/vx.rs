//! `vx` — command-line front end for the vectorized XML store.
//!
//! ```text
//! vx ingest <xml-file> <store-dir> [--auto] [--dom] [--drop-misc] [--frames N]
//! vx stats <store-dir>
//! vx query <store-dir> <xquery> [--out values|xml]
//! vx explain <store-dir> <xquery> [--plan hash|inl|merge] [--no-indexes]
//! vx reconstruct <store-dir> [--out <file>]
//! vx serve <store-dir>... [--addr HOST:PORT] [--threads N]
//! ```
//!
//! `ingest` builds a store from an XML file, by default through the
//! streaming bounded-memory pipeline (`Store::ingest_stream`); `--dom`
//! forces the parse-then-vectorize path (both produce byte-identical
//! stores). `stats` summarizes a store from its catalog and skeleton and
//! refuses stores that fail the integrity gate (every vector file must
//! decode and agree with the catalog). `query` compiles an XQ query and
//! reduces it against the store's `VEC(T)`; `reconstruct` regenerates
//! the original document text (byte-identical to the compact writer's
//! serialization of the ingested XML). `explain` renders the planner's
//! decisions — exact cardinalities, the join strategy per equality edge,
//! and which literal filters resolve through the store's persistent
//! value indexes — without enumerating a single tuple. `serve` opens
//! each store once
//! into a shared [`xmlvec::core::StoreHandle`] and answers HTTP/1.1 +
//! JSON queries from a worker-thread pool (see `xmlvec::serve`).
//!
//! Exit codes are part of the interface and pinned by `tests/cli.rs`:
//! `0` success, `1` operational failure (missing or damaged store, query
//! error, I/O error), `2` usage error (unknown command or flag, missing
//! operand).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::exit;
use xmlvec::bench::StoreSizes;
use xmlvec::core::{Compaction, IngestOptions, Store, StoreHandle, VecDoc};
use xmlvec::{Query, QueryOutput};

const USAGE: &str = "usage:
  vx ingest <xml-file> <store-dir> [--auto] [--dom] [--drop-misc] [--frames N] [--metrics]
  vx append <store-dir> <xml-file>... [--drop-misc]
  vx compact <store-dir> [--auto]
  vx stats <store-dir> [--metrics]
  vx query <store-dir> <xquery> [--out values|xml] [--profile | --profile-json]
  vx explain <store-dir> <xquery> [--plan hash|inl|merge] [--no-indexes]
  vx reconstruct <store-dir> [--out <file>]
  vx serve <store-dir>... [--addr HOST:PORT] [--threads N] [--slow-ms N]

ingest options:
  --auto       per-vector encoding choice: value index at >= 64 records,
               dictionary when smaller, else plain (default: plain)
  --dom        build via the in-memory DOM path instead of streaming
  --drop-misc  drop comments/processing instructions instead of erroring
  --frames N   spill buffer-pool frames for streaming ingest (default: 64)
  --metrics    report per-phase timings, pipeline tallies, and spill-pool stats

append options:
  --drop-misc  drop comments/processing instructions instead of erroring
               (documents are journaled to the store's write-ahead log;
               run `vx compact` to fold them into the vector files)

compact options:
  --auto       per-vector encoding choice for the new generation,
               as `ingest --auto`

stats options:
  --metrics    read vectors through a bounded buffer pool and report
               frame-cache statistics plus per-vector encoding
               (v1 plain / v2 dict / v3 index) and value-index sizes

query options:
  --out values   one projected text value per line (default)
  --out xml      serialize the result as an XML document
  --profile      suppress results; print the per-step evaluation profile
  --profile-json same, as a JSON object

explain options:
  --plan S       force one join strategy for every edge (hash, inl, merge)
  --no-indexes   plan as if the store had no persistent value indexes

reconstruct options:
  --out FILE   write the XML to FILE instead of stdout

serve options:
  --addr HOST:PORT  listen address (default 127.0.0.1:8080; port 0 picks a free port)
  --threads N       worker threads (default: available parallelism, capped at 8)
  --slow-ms N       slow-query flight-recorder threshold in milliseconds
                    (default: 100, or VX_SLOW_MS; 0 records every query)";

/// Operational failure: the command was well-formed but could not be
/// carried out (missing store, damaged file, bad query, I/O error).
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("vx: {message}");
    exit(1);
}

/// Usage error: the command line itself is malformed.
fn fail_usage(message: impl std::fmt::Display) -> ! {
    eprintln!("vx: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

/// Writes to stdout. A broken pipe (the reader, e.g. `head`, closed its
/// end) is a clean exit 0, not a failure; any other error is
/// operational.
fn write_stdout(lock: &mut impl std::io::Write, bytes: &[u8]) {
    if let Err(e) = lock.write_all(bytes) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            exit(0);
        }
        fail(e);
    }
}

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ingest") => ingest(&args[1..]),
        Some("append") => append(&args[1..]),
        Some("compact") => compact(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("reconstruct") => reconstruct(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some(other) => fail_usage(format!("unknown command `{other}`")),
        None => usage(),
    }
}

/// Splits `args` into positionals and handles one optional `--out VALUE`
/// flag; any other flag is a usage error.
fn positionals_and_out<'a>(
    args: &'a [String],
    command: &str,
) -> (Vec<&'a String>, Option<&'a str>) {
    let mut positional = Vec::new();
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .unwrap_or_else(|| fail_usage(format!("{command}: --out needs a value")))
                        .as_str(),
                );
            }
            flag if flag.starts_with('-') => {
                fail_usage(format!("{command}: unknown flag `{flag}`"))
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    (positional, out)
}

fn ingest(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut options = IngestOptions::default();
    let mut use_dom = false;
    let mut metrics = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--auto" => options.compaction = Compaction::Auto,
            "--dom" => use_dom = true,
            "--drop-misc" => options.drop_unrepresentable = true,
            "--metrics" => metrics = true,
            "--frames" => {
                i += 1;
                options.spill_frames = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail_usage("ingest: --frames needs a positive integer"));
            }
            flag if flag.starts_with('-') => fail_usage(format!("ingest: unknown flag `{flag}`")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [xml_file, store_dir] = positional[..] else {
        fail_usage("ingest: expected <xml-file> <store-dir>");
    };
    let dir = PathBuf::from(store_dir);

    let mut out = String::new();
    let catalog = if use_dom {
        let timer = xmlvec::obs::Timer::start();
        let text = std::fs::read_to_string(xml_file)
            .unwrap_or_else(|e| fail(format!("reading {xml_file}: {e}")));
        let doc = xmlvec::xml::parse(&text).unwrap_or_else(|e| fail(e));
        let parse_secs = timer.secs();
        let vectorize_options = xmlvec::core::VectorizeOptions {
            drop_unrepresentable: options.drop_unrepresentable,
        };
        let timer = xmlvec::obs::Timer::start();
        let vec_doc =
            xmlvec::core::vectorize_with(&doc, &vectorize_options).unwrap_or_else(|e| fail(e));
        let vectorize_secs = timer.secs();
        let timer = xmlvec::obs::Timer::start();
        let catalog = Store::save(&dir, &vec_doc, options.compaction).unwrap_or_else(|e| fail(e));
        if metrics {
            let _ = writeln!(out, "phase        parse      {parse_secs:.6} s");
            let _ = writeln!(out, "phase        vectorize  {vectorize_secs:.6} s");
            let _ = writeln!(out, "phase        write      {:.6} s", timer.secs());
        }
        catalog
    } else {
        let file =
            std::fs::File::open(xml_file).unwrap_or_else(|e| fail(format!("{xml_file}: {e}")));
        let report = Store::ingest_stream(&dir, std::io::BufReader::new(file), &options)
            .unwrap_or_else(|e| fail(e));
        if report.spill_pages > 0 {
            let _ = writeln!(
                out,
                "spilled {} pages ({} pool misses, {} evictions)",
                report.spill_pages, report.pager.misses, report.pager.evictions
            );
        }
        if metrics {
            let _ = writeln!(out, "phase        pipeline   {:.6} s", report.pipeline_secs);
            let _ = writeln!(out, "phase        write      {:.6} s", report.write_secs);
            let _ = writeln!(
                out,
                "pipeline     {} events, {} elements, {} values ({} attr, {} text)",
                report.stats.events,
                report.stats.elements,
                report.stats.values(),
                report.stats.attr_values,
                report.stats.text_values
            );
            let _ = writeln!(
                out,
                "spill pool   {} pages, {} hits, {} misses, {} evictions, {} writebacks",
                report.spill_pages,
                report.pager.hits,
                report.pager.misses,
                report.pager.evictions,
                report.pager.writebacks
            );
        }
        report.catalog
    };
    let _ = writeln!(
        out,
        "ingested {} -> {} ({} paths, {} nodes, {} text bytes)",
        xml_file,
        dir.display(),
        catalog.vectors.len(),
        catalog.node_count,
        catalog.text_bytes
    );
    let stdout = std::io::stdout();
    write_stdout(&mut stdout.lock(), out.as_bytes());
}

/// Journals documents to a store's write-ahead log. Validation (parse,
/// root-tag match, vectorizability) happens before anything is written,
/// so a failed append leaves the WAL untouched; a successful one is
/// fsync'd as a single batch unless `VX_WAL_SYNC=off`.
fn append(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut options = xmlvec::core::AppendOptions::default();
    for arg in args {
        match arg.as_str() {
            "--drop-misc" => options.drop_unrepresentable = true,
            flag if flag.starts_with('-') => fail_usage(format!("append: unknown flag `{flag}`")),
            _ => positional.push(arg),
        }
    }
    let Some((dir, files)) = positional.split_first() else {
        fail_usage("append: expected <store-dir> <xml-file>...");
    };
    if files.is_empty() {
        fail_usage("append: expected at least one <xml-file>");
    }
    let docs: Vec<Vec<u8>> = files
        .iter()
        .map(|f| std::fs::read(f).unwrap_or_else(|e| fail(format!("{f}: {e}"))))
        .collect();
    let report = Store::append_batch(Path::new(dir), &docs, &options)
        .unwrap_or_else(|e| fail(format!("{dir}: {e}")));
    let line = format!(
        "appended {} doc{} -> {dir} (wal seq {}..{}, {} bytes, {}{})\n",
        report.docs,
        if report.docs == 1 { "" } else { "s" },
        report.first_seq,
        report.last_seq,
        report.wal_bytes,
        report.segment,
        if report.synced { "" } else { ", unsynced" }
    );
    let stdout = std::io::stdout();
    write_stdout(&mut stdout.lock(), line.as_bytes());
}

/// Folds the WAL tail into a fresh generation directory and swaps the
/// `CURRENT` manifest; a store with nothing pending is left untouched.
fn compact(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut compaction = Compaction::None;
    for arg in args {
        match arg.as_str() {
            "--auto" => compaction = Compaction::Auto,
            flag if flag.starts_with('-') => fail_usage(format!("compact: unknown flag `{flag}`")),
            _ => positional.push(arg),
        }
    }
    let [dir] = positional[..] else {
        fail_usage("compact: expected <store-dir>");
    };
    let report =
        Store::compact(Path::new(dir), compaction).unwrap_or_else(|e| fail(format!("{dir}: {e}")));
    let line = if report.compacted {
        format!(
            "compacted {dir} -> {} ({} record{}, {} doc{}, generation {})\n",
            report.gen_dir.display(),
            report.records_applied,
            if report.records_applied == 1 { "" } else { "s" },
            report.docs_merged,
            if report.docs_merged == 1 { "" } else { "s" },
            report.generation
        )
    } else {
        format!(
            "nothing to compact in {dir} (generation {})\n",
            report.generation
        )
    };
    let stdout = std::io::stdout();
    write_stdout(&mut stdout.lock(), line.as_bytes());
}

/// Opens a store strictly into a shared handle — the single
/// store-open/error-reporting path for every store-reading command
/// (`stats`, `query`, `reconstruct`, `serve`). Any missing file,
/// undecodable vector, or catalog/skeleton disagreement is an
/// operational failure: exit 1, one uniform `vx: <dir>: <cause>` line.
fn open_store(dir: &Path) -> StoreHandle {
    StoreHandle::open(dir).unwrap_or_else(|e| fail(format!("{}: {e}", dir.display())))
}

fn stats(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut metrics = false;
    for arg in args {
        match arg.as_str() {
            "--metrics" => metrics = true,
            flag if flag.starts_with('-') => fail_usage(format!("stats: unknown flag `{flag}`")),
            _ => positional.push(arg),
        }
    }
    let [dir] = positional[..] else {
        fail_usage("stats: expected <store-dir>");
    };
    let dir = Path::new(dir);
    // The shared strict open is the integrity gate: every vector file
    // must decode and agree with the catalog and skeleton before
    // anything is printed — a damaged store yields exit 1 and no
    // partial output.
    let handle = open_store(dir);
    // Summary lines describe the *served* document (base generation plus
    // any WAL overlay); the per-file survey below reads the on-disk
    // catalog of the active generation, which lives in `base_dir` —
    // `dir` itself for flat stores, `dir/gen-NNNN` after a compaction.
    let catalog = handle.base_catalog();
    let served = handle.catalog();
    let base_dir = handle.base_dir().to_path_buf();
    let skeleton = handle.skeleton();
    let root = handle.root();
    let sizes = StoreSizes::measure(dir).unwrap_or_else(|e| fail(e));

    // Per-vector encoding survey (the handle's decoded vectors do not
    // retain the on-disk encoding version). With --metrics, reads go
    // through a bounded buffer pool so the frame-cache behaviour of the
    // paged path can be reported.
    const STATS_FRAMES: usize = 16;
    let mut pool = xmlvec::storage::pager::PagerStats::default();
    let mut encodings: Vec<(u8, u64)> = Vec::with_capacity(catalog.vectors.len());
    for entry in &catalog.vectors {
        let vector = if metrics {
            let (vector, stats) =
                xmlvec::vector::Vector::open_paged(&base_dir.join(&entry.file), STATS_FRAMES)
                    .unwrap_or_else(|e| {
                        fail(format!("vector `{}` ({}): {e}", entry.path, entry.file))
                    });
            pool.hits += stats.hits;
            pool.misses += stats.misses;
            pool.evictions += stats.evictions;
            pool.writebacks += stats.writebacks;
            vector
        } else {
            xmlvec::vector::Vector::open(&base_dir.join(&entry.file))
                .unwrap_or_else(|e| fail(format!("vector `{}` ({}): {e}", entry.path, entry.file)))
        };
        encodings.push((vector.stats().version, vector.stats().index_bytes));
        if entry.version != 0 && entry.version != vector.stats().version {
            fail(format!(
                "vector `{}` ({}): catalog says format v{}, file is v{}",
                entry.path,
                entry.file,
                entry.version,
                vector.stats().version
            ));
        }
        if vector.len() != entry.count {
            fail(format!(
                "vector `{}` ({}): catalog says {} records, file has {}",
                entry.path,
                entry.file,
                entry.count,
                vector.len()
            ));
        }
        if vector.stats().data_bytes != entry.data_bytes {
            fail(format!(
                "vector `{}` ({}): catalog says {} data bytes, file has {}",
                entry.path,
                entry.file,
                entry.data_bytes,
                vector.stats().data_bytes
            ));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "store        {}", dir.display());
    let _ = writeln!(
        out,
        "nodes        {} expanded, {} DAG nodes ({:.1}x compression), {} names",
        served.node_count,
        skeleton.len(),
        served.node_count as f64 / skeleton.len() as f64,
        skeleton.names().len()
    );
    debug_assert_eq!(skeleton.expanded_size(root), served.node_count);
    let _ = writeln!(
        out,
        "bytes        {} skeleton, {} vectors, {} catalog, {} index, {} total",
        sizes.skeleton_bytes,
        sizes.vector_bytes,
        sizes.catalog_bytes,
        sizes.index_bytes,
        sizes.total()
    );
    let _ = writeln!(out, "text bytes   {}", served.text_bytes);
    let _ = writeln!(
        out,
        "struct index {}",
        if handle.structural_loaded() {
            "persisted (index.vxpi)"
        } else {
            "rebuilt at open"
        }
    );
    if metrics {
        let wal = handle.wal();
        if handle.generation() == 0 {
            let _ = writeln!(out, "generation   0 (flat)");
        } else {
            let _ = writeln!(
                out,
                "generation   {} ({})",
                handle.generation(),
                base_dir.display()
            );
        }
        let _ = writeln!(
            out,
            "wal          {} segment{}, {} bytes, {} pending doc{} ({} bytes), applied seq {}",
            wal.segments,
            if wal.segments == 1 { "" } else { "s" },
            wal.wal_bytes,
            wal.pending_docs,
            if wal.pending_docs == 1 { "" } else { "s" },
            wal.pending_bytes,
            wal.applied_seq
        );
        if wal.pending_docs > 0 {
            let _ = writeln!(
                out,
                "wal overlay  serving {} vectors ({} on disk); run `vx compact` to fold",
                served.vectors.len(),
                catalog.vectors.len()
            );
        }
        let _ = writeln!(
            out,
            "frame cache  {} frames: {} hits, {} misses, {} evictions, {} writebacks",
            STATS_FRAMES, pool.hits, pool.misses, pool.evictions, pool.writebacks
        );
        let indexed = encodings.iter().filter(|(v, _)| *v == 3).count();
        let index_bytes: u64 = encodings.iter().map(|(_, b)| *b).sum();
        let _ = writeln!(
            out,
            "value index  {indexed} of {} vectors, {index_bytes} bytes",
            encodings.len()
        );
    }
    let _ = writeln!(out, "vectors      {}", catalog.vectors.len());
    for (i, entry) in catalog.vectors.iter().enumerate() {
        if metrics {
            let (version, index_bytes) = encodings[i];
            let encoding = match version {
                2 => "v2 dict ",
                3 => "v3 index",
                _ => "v1 plain",
            };
            let _ = write!(
                out,
                "  {:<12} {:>8} values {:>10} data bytes  {encoding}",
                entry.file, entry.count, entry.data_bytes
            );
            if index_bytes > 0 {
                let _ = write!(out, " ({index_bytes} index bytes)");
            }
            let _ = writeln!(out, "  {}", entry.path);
        } else {
            let _ = writeln!(
                out,
                "  {:<12} {:>8} values {:>10} data bytes  {}",
                entry.file, entry.count, entry.data_bytes, entry.path
            );
        }
    }
    let stdout = std::io::stdout();
    write_stdout(&mut stdout.lock(), out.as_bytes());
}

fn query(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut out_mode: Option<&str> = None;
    let mut profile = false;
    let mut profile_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_mode = Some(
                    args.get(i)
                        .unwrap_or_else(|| fail_usage("query: --out needs a value"))
                        .as_str(),
                );
            }
            "--profile" => profile = true,
            "--profile-json" => profile_json = true,
            flag if flag.starts_with('-') => fail_usage(format!("query: unknown flag `{flag}`")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [dir, xq] = positional[..] else {
        fail_usage("query: expected <store-dir> <xquery>");
    };
    let mode = match out_mode {
        None | Some("values") => "values",
        Some("xml") => "xml",
        Some(other) => fail_usage(format!(
            "query: --out must be `values` or `xml`, got `{other}`"
        )),
    };
    let handle = open_store(Path::new(dir));
    let compiled = Query::new(xq).unwrap_or_else(|e| fail(format!("query: {e}")));

    if profile || profile_json {
        // Every doc("…") name in the query resolves to this one store.
        // Profiled runs go through the corpus path: spans must tile, so
        // collection stays serial there.
        let corpus: Vec<(&str, &VecDoc)> = compiled
            .graph()
            .doc_names()
            .into_iter()
            .map(|name| (name, handle.doc()))
            .collect();
        let options = xmlvec::engine::RunOptions {
            profile: true,
            ..Default::default()
        };
        let outcome = compiled
            .run_with(&corpus[..], &options)
            .unwrap_or_else(|e| fail(format!("query: {e}")));
        let (output, profile) = (outcome.output, outcome.profile.expect("profile requested"));
        let cardinality = match &output {
            QueryOutput::Values(values) => values.len() as u64,
            QueryOutput::Document(_) => output.strings().len() as u64,
        };
        let report = if profile_json {
            profile_json_report(xq, cardinality, &profile)
        } else {
            profile_report(xq, cardinality, &profile)
        };
        let stdout = std::io::stdout();
        write_stdout(&mut stdout.lock(), report.as_bytes());
        return;
    }

    let output = compiled
        .run_with(&handle, &Default::default())
        .unwrap_or_else(|e| fail(format!("query: {e}")))
        .output;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    match mode {
        "xml" => {
            let xml = output
                .to_xml()
                .unwrap_or_else(|e| fail(format!("query: {e}")));
            write_stdout(&mut lock, xml.as_bytes());
            write_stdout(&mut lock, b"\n");
        }
        _ => match &output {
            QueryOutput::Values(values) => {
                // Values are raw bytes; write them unmangled.
                for value in values {
                    write_stdout(&mut lock, value);
                    write_stdout(&mut lock, b"\n");
                }
            }
            QueryOutput::Document(_) => {
                for value in output.strings() {
                    write_stdout(&mut lock, value.as_bytes());
                    write_stdout(&mut lock, b"\n");
                }
            }
        },
    }
}

/// Renders the planner's decisions for a query over a store without
/// running it: collection happens (exact cardinalities), enumeration
/// never does.
fn explain(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut options = xmlvec::engine::RunOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--plan" => {
                i += 1;
                let value = args
                    .get(i)
                    .unwrap_or_else(|| fail_usage("explain: --plan needs a value"));
                options.strategy = Some(xmlvec::engine::JoinStrategy::parse(value).unwrap_or_else(
                    || {
                        fail_usage(format!(
                            "explain: --plan must be `hash`, `inl`, or `merge`, got `{value}`"
                        ))
                    },
                ));
            }
            "--no-indexes" => options.use_indexes = false,
            flag if flag.starts_with('-') => fail_usage(format!("explain: unknown flag `{flag}`")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [dir, xq] = positional[..] else {
        fail_usage("explain: expected <store-dir> <xquery>");
    };
    let handle = open_store(Path::new(dir));
    let compiled = Query::new(xq).unwrap_or_else(|e| fail(format!("explain: {e}")));
    let plan = compiled
        .explain_with(&handle, &options)
        .unwrap_or_else(|e| fail(format!("explain: {e}")));
    let stdout = std::io::stdout();
    write_stdout(&mut stdout.lock(), plan.render().as_bytes());
}

/// The human-readable `--profile` report: steps tile the total, so the
/// percentage column is relative to the step sum.
fn profile_report(xq: &str, cardinality: u64, profile: &xmlvec::engine::QueryProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "query        {xq}");
    let _ = writeln!(
        out,
        "total        {:.6} s (steps sum {:.6} s)",
        profile.total_secs,
        profile.steps_total()
    );
    let _ = writeln!(out, "cardinality  {cardinality}");
    let _ = writeln!(out, "steps");
    let steps_total = profile.steps_total().max(f64::MIN_POSITIVE);
    for step in &profile.steps {
        let _ = writeln!(
            out,
            "  {:<16} {:>11.6} s {:>5.1}%",
            step.name,
            step.secs,
            100.0 * step.secs / steps_total
        );
    }
    let _ = writeln!(out, "variables");
    for var in &profile.variables {
        let name = if var.name.is_empty() {
            "(doc)"
        } else {
            &var.name
        };
        let _ = writeln!(out, "  {:<16} {:>11} occurrences", name, var.occurrences);
    }
    let _ = writeln!(out, "counters");
    for (name, value) in profile.counters.iter() {
        let _ = writeln!(out, "  {name:<22} {value:>13}");
    }
    out
}

/// The machine-readable `--profile-json` report: the shared
/// `vx_bench::profile_json` shape plus `query` and `cardinality` keys.
fn profile_json_report(
    xq: &str,
    cardinality: u64,
    profile: &xmlvec::engine::QueryProfile,
) -> String {
    use xmlvec::core::json::Json;
    let Json::Object(mut fields) = xmlvec::bench::profile_json(profile) else {
        unreachable!("profile_json returns an object");
    };
    fields.insert(0, ("query".into(), Json::Str(xq.to_string())));
    fields.insert(1, ("cardinality".into(), Json::Num(cardinality as f64)));
    let mut text = xmlvec::core::json::to_string_pretty(&Json::Object(fields));
    text.push('\n');
    text
}

fn reconstruct(args: &[String]) {
    let (positional, out_file) = positionals_and_out(args, "reconstruct");
    let [dir] = positional[..] else {
        fail_usage("reconstruct: expected <store-dir>");
    };
    let handle = open_store(Path::new(dir));
    let document = xmlvec::core::reconstruct(handle.doc()).unwrap_or_else(|e| fail(e));
    let xml = xmlvec::xml::write_document(&document, &xmlvec::xml::WriteOptions::compact());
    match out_file {
        Some(path) => {
            std::fs::write(path, &xml).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        }
        None => {
            let stdout = std::io::stdout();
            write_stdout(&mut stdout.lock(), xml.as_bytes());
        }
    }
}

fn serve(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut addr = String::from("127.0.0.1:8080");
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let mut options = xmlvec::serve::ServeOptions::from_env();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args
                    .get(i)
                    .unwrap_or_else(|| fail_usage("serve: --addr needs a HOST:PORT value"))
                    .clone();
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| fail_usage("serve: --threads needs a positive integer"));
            }
            "--slow-ms" => {
                i += 1;
                options.slow_ms = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    fail_usage("serve: --slow-ms needs a millisecond count (0 records all)")
                });
            }
            flag if flag.starts_with('-') => fail_usage(format!("serve: unknown flag `{flag}`")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    if positional.is_empty() {
        fail_usage("serve: expected at least one <store-dir>");
    }
    let dirs: Vec<&Path> = positional.iter().map(|s| Path::new(s.as_str())).collect();
    let server = xmlvec::serve::Server::bind_with(&dirs, &addr, threads, &options)
        .unwrap_or_else(|e| fail(e));
    // The readiness line carries the resolved address (port 0 binds an
    // ephemeral port); scripts parse it before their first request.
    let line = format!(
        "vx serve: listening on http://{} ({} store{}, {} threads)\n",
        server.local_addr(),
        dirs.len(),
        if dirs.len() == 1 { "" } else { "s" },
        threads
    );
    {
        use std::io::Write as _;
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        write_stdout(&mut lock, line.as_bytes());
        let _ = lock.flush();
    }
    server.run().unwrap_or_else(|e| fail(e));
}
