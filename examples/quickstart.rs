//! End-to-end tour: parse → vectorize → persist → reload → reconstruct →
//! query. Run with `cargo run --example quickstart`.

use xmlvec::core::{reconstruct, vectorize, Compaction, Store};

fn main() -> xmlvec::Result<()> {
    // 1. Parse a small MedLine-shaped document.
    let xml = r#"<MedlineCitationSet>
        <MedlineCitation>
            <PMID>10000001</PMID>
            <Article><ArticleTitle>On vectorizing trees</ArticleTitle></Article>
            <Language>ENG</Language>
        </MedlineCitation>
        <MedlineCitation>
            <PMID>10000002</PMID>
            <Article><ArticleTitle>Sur les arbres</ArticleTitle></Article>
            <Language>FRE</Language>
        </MedlineCitation>
        <MedlineCitation>
            <PMID>10000003</PMID>
            <Article><ArticleTitle>Skeletons and vectors</ArticleTitle></Article>
            <Language>ENG</Language>
        </MedlineCitation>
    </MedlineCitationSet>"#;
    let document = xmlvec::xml::parse(xml)?;

    // 2. Vectorize: VEC(T) = (skeleton, vectors).
    let vec_doc = vectorize(&document)?;
    println!(
        "skeleton: {} DAG nodes for {} tree nodes",
        vec_doc.skeleton.len(),
        vec_doc.node_count()
    );
    for vector in vec_doc.vectors() {
        println!("vector {:45} {} values", vector.path, vector.values.len());
    }

    // 3. Persist the store and reload it.
    let dir = std::env::temp_dir().join("xmlvec-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Store::save(&dir, &vec_doc, Compaction::Auto)?;
    println!(
        "saved {} vectors to {}",
        catalog.vectors.len(),
        dir.display()
    );
    let (reloaded, _catalog) = Store::open(&dir)?;

    // 4. Reconstruct the original document from the store.
    let back = reconstruct(&reloaded)?;
    assert_eq!(back.root, document.root);
    println!("reconstruction is lossless");

    // 5. Evaluate an XQ selection against the vectors — no tree rebuild.
    let results = xmlvec::query(
        &reloaded,
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "ENG"
           return $c/PMID"#,
    )?;
    println!("English-language PMIDs: {results:?}");
    assert_eq!(results, vec!["10000001", "10000003"]);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
