//! End-to-end tour: parse → vectorize → persist → reload → reconstruct →
//! query. Run with `cargo run --example quickstart`.

use xmlvec::core::{reconstruct, vectorize, Compaction, Store};
use xmlvec::{Query, QueryOutput, RunOptions};

fn main() -> xmlvec::Result<()> {
    // 1. Parse a small MedLine-shaped document.
    let xml = r#"<MedlineCitationSet>
        <MedlineCitation>
            <PMID>10000001</PMID>
            <Article><ArticleTitle>On vectorizing trees</ArticleTitle></Article>
            <Language>ENG</Language>
        </MedlineCitation>
        <MedlineCitation>
            <PMID>10000002</PMID>
            <Article><ArticleTitle>Sur les arbres</ArticleTitle></Article>
            <Language>FRE</Language>
        </MedlineCitation>
        <MedlineCitation>
            <PMID>10000003</PMID>
            <Article><ArticleTitle>Skeletons and vectors</ArticleTitle></Article>
            <Language>ENG</Language>
        </MedlineCitation>
    </MedlineCitationSet>"#;
    let document = xmlvec::xml::parse(xml)?;

    // 2. Vectorize: VEC(T) = (skeleton, vectors).
    let vec_doc = vectorize(&document)?;
    println!(
        "skeleton: {} DAG nodes for {} tree nodes",
        vec_doc.skeleton.len(),
        vec_doc.node_count()
    );
    for vector in vec_doc.vectors() {
        println!("vector {:45} {} values", vector.path, vector.values.len());
    }

    // 3. Persist the store and reload it.
    let dir = std::env::temp_dir().join("xmlvec-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Store::save(&dir, &vec_doc, Compaction::Auto)?;
    println!(
        "saved {} vectors to {}",
        catalog.vectors.len(),
        dir.display()
    );
    let (reloaded, _catalog) = Store::open(&dir)?;

    // 4. Reconstruct the original document from the store.
    let back = reconstruct(&reloaded)?;
    assert_eq!(back.root, document.root);
    println!("reconstruction is lossless");

    // 5. Compile an XQ selection once, evaluate it against the vectors —
    // no tree rebuild.
    let select = Query::new(
        r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation
           where $c/Language = "ENG"
           return $c/PMID"#,
    )?;
    let results = select
        .run_with(&reloaded, &RunOptions::default())?
        .output
        .strings();
    println!("English-language PMIDs: {results:?}");
    assert_eq!(results, vec!["10000001", "10000003"]);

    // 6. Element construction stays vectorized: the result is itself a
    // VEC(T), reconstructed to XML only on demand.
    let build = Query::new(
        r#"for $c in doc("ml")//MedlineCitation
           where $c/Language = "ENG"
           return <cite>{$c/PMID}{$c/Article/ArticleTitle}</cite>"#,
    )?;
    let out = build.run_with(&reloaded, &RunOptions::default())?.output;
    if let QueryOutput::Document(vd) = &out {
        println!(
            "constructed result has {} vectors (e.g. results/cite/PMID)",
            vd.vectors().len()
        );
    }
    println!("constructed XML: {}", out.to_xml()?);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
