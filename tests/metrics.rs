//! End-to-end tests for the observability surface: profile determinism,
//! span accounting, the `VX_LOG` event sink, `--profile-json`, and the
//! broken-pipe exit contract — driving both the in-process engine and
//! the compiled `vx` binary.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use xmlvec::core::json;
use xmlvec::{Query, RunOptions};

fn profiled() -> RunOptions {
    RunOptions {
        profile: true,
        ..RunOptions::default()
    }
}

fn vx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vx"))
}

/// A scratch directory removed on drop, unique per test.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("vx-metrics-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Saves a vectorized XMark corpus as an on-disk store for CLI runs.
fn xmark_store(scratch: &Scratch) -> PathBuf {
    let doc = xmlvec::data::xmark(7, 30);
    let vec_doc = xmlvec::core::vectorize(&doc).unwrap();
    let dir = scratch.path("xk-store");
    xmlvec::core::Store::save(&dir, &vec_doc, xmlvec::core::Compaction::None).unwrap();
    dir
}

const JOIN_QUERY: &str = r#"for $p in doc("xk")/site/people/person,
   $o in doc("xk")/site/open_auctions/open_auction
   where $o/seller/@person = $p/@id return $p/name"#;

/// Operation counters and cardinalities are a pure function of the query
/// and the data: two profiled runs agree exactly. Span timers are wall
/// clock and excluded on purpose.
#[test]
fn profiled_counters_are_deterministic() {
    let doc = xmlvec::data::xmark(7, 30);
    let vec_doc = xmlvec::core::vectorize(&doc).unwrap();
    let q = Query::new(JOIN_QUERY).unwrap();

    let a = q.run_with(&vec_doc, &profiled()).unwrap();
    let b = q.run_with(&vec_doc, &profiled()).unwrap();
    let (out_a, prof_a) = (a.output, a.profile.unwrap());
    let (out_b, prof_b) = (b.output, b.profile.unwrap());
    let out_plain = q.run_with(&vec_doc, &RunOptions::default()).unwrap().output;

    assert_eq!(out_a.strings(), out_b.strings());
    assert_eq!(
        out_a.strings(),
        out_plain.strings(),
        "profiling changed the answer"
    );

    let counters = |p: &xmlvec::engine::QueryProfile| p.counters.iter().collect::<Vec<_>>();
    assert!(!counters(&prof_a).is_empty());
    assert_eq!(counters(&prof_a), counters(&prof_b));
    assert_eq!(
        prof_a
            .variables
            .iter()
            .map(|v| (&v.name, v.occurrences))
            .collect::<Vec<_>>(),
        prof_b
            .variables
            .iter()
            .map(|v| (&v.name, v.occurrences))
            .collect::<Vec<_>>(),
    );
    // Same steps in the same order; durations are free to differ.
    assert_eq!(
        prof_a.steps.iter().map(|s| &s.name).collect::<Vec<_>>(),
        prof_b.steps.iter().map(|s| &s.name).collect::<Vec<_>>(),
    );
}

/// The step spans tile the measured interval: their sum accounts for the
/// profile's total, up to the bookkeeping outside the last boundary.
#[test]
fn profile_steps_tile_the_total() {
    let doc = xmlvec::data::xmark(7, 60);
    let vec_doc = xmlvec::core::vectorize(&doc).unwrap();
    let profile = Query::new(JOIN_QUERY)
        .unwrap()
        .run_with(&vec_doc, &profiled())
        .unwrap()
        .profile
        .unwrap();

    let sum = profile.steps_total();
    assert!(sum > 0.0 && profile.total_secs > 0.0);
    assert!(
        (profile.total_secs - sum).abs() <= 0.05 * profile.total_secs + 1e-4,
        "steps sum {sum} vs total {}",
        profile.total_secs
    );
}

/// With `VX_LOG` unset the binary emits no event output at all: stderr
/// stays empty and stdout carries only the query results.
#[test]
fn vx_log_unset_means_silence() {
    let scratch = Scratch::new("silent");
    let store = xmark_store(&scratch);
    let out = vx()
        .args(["query", store.to_str().unwrap(), JOIN_QUERY])
        .env_remove("VX_LOG")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stderr),
        "",
        "no events expected"
    );
    assert!(!out.stdout.is_empty());
}

/// `VX_LOG=<file>` appends one JSON object per line; every line parses,
/// carries `ev`/`us` keys, and the engine emits its step events plus a
/// reduce summary.
#[test]
fn vx_log_file_sink_writes_json_lines() {
    let scratch = Scratch::new("sink");
    let store = xmark_store(&scratch);
    let log = scratch.path("events.jsonl");
    let out = vx()
        .args(["query", store.to_str().unwrap(), JOIN_QUERY])
        .env("VX_LOG", &log)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    let text = std::fs::read_to_string(&log).unwrap();
    let mut events = Vec::new();
    for line in text.lines() {
        let parsed = json::parse(line).unwrap_or_else(|e| panic!("bad event line {line:?}: {e}"));
        assert!(parsed.get("us").is_some(), "missing us in {line:?}");
        events.push(
            parsed
                .get("ev")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string(),
        );
    }
    assert!(
        events.iter().filter(|e| *e == "engine.step").count() >= 4,
        "events: {events:?}"
    );
    assert_eq!(events.iter().filter(|e| *e == "engine.reduce").count(), 1);
}

/// `vx query --profile-json` prints one well-formed JSON document whose
/// steps sum to its total and whose cardinality matches the in-process
/// engine.
#[test]
fn profile_json_schema_holds() {
    let scratch = Scratch::new("pjson");
    let store = xmark_store(&scratch);
    let out = vx()
        .args([
            "query",
            store.to_str().unwrap(),
            JOIN_QUERY,
            "--profile-json",
        ])
        .env_remove("VX_LOG")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        report.get("query").and_then(|v| v.as_str()),
        Some(JOIN_QUERY)
    );
    let steps = report.get("steps").and_then(|v| v.as_array()).unwrap();
    assert!(steps
        .iter()
        .all(|s| s.get("step").is_some() && s.get("secs").is_some()));
    assert!(report
        .get("counters")
        .and_then(|c| c.get("tuples.emitted"))
        .is_some());
    assert!(!report
        .get("variables")
        .and_then(|v| v.as_array())
        .unwrap()
        .is_empty());

    let doc = xmlvec::data::xmark(7, 30);
    let vec_doc = xmlvec::core::vectorize(&doc).unwrap();
    let expected = Query::new(JOIN_QUERY)
        .unwrap()
        .run_with(&vec_doc, &RunOptions::default())
        .unwrap()
        .output;
    assert_eq!(
        report.get("cardinality").and_then(|v| v.as_u64()),
        Some(expected.strings().len() as u64)
    );
}

/// [`xmlvec::obs::Histogram`] under 8 concurrent writers: no recorded
/// value is lost, and the quantile estimates stay within the documented
/// ≤12.5% relative-error bound of the exact quantiles of the known
/// distribution every thread contributed to.
#[test]
fn histogram_concurrent_writers_hold_the_error_bound() {
    use xmlvec::obs::Histogram;

    const WRITERS: usize = 8;
    const PER_WRITER: usize = 5_000;
    let hist = Histogram::new();

    // Every thread records the same deterministic skewed distribution
    // (i² spreads values from 1µs to 25s across the bucket decades), so
    // the merged multiset's exact quantiles are computable in-test.
    let value = |i: usize| (i as u64 + 1) * (i as u64 + 1);
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let hist = &hist;
            scope.spawn(move || {
                // A coprime stride (10·writer+3 is odd and not a
                // multiple of 5, so gcd with 5000 = 2³·5⁴ is 1) walks a
                // different permutation per thread: the interleaving
                // varies while the multiset stays identical.
                let stride = 10 * writer + 3;
                for i in 0..PER_WRITER {
                    hist.record_us(value((i * stride) % PER_WRITER));
                }
            });
        }
    });

    assert_eq!(hist.count(), (WRITERS * PER_WRITER) as u64, "lost updates");
    let mut exact: Vec<u64> = Vec::with_capacity(WRITERS * PER_WRITER);
    for _ in 0..WRITERS {
        exact.extend((0..PER_WRITER).map(value));
    }
    exact.sort_unstable();
    assert_eq!(hist.sum_us(), exact.iter().sum::<u64>(), "lost sum");
    assert_eq!(hist.max_us(), *exact.last().unwrap());

    for q in [0.25, 0.5, 0.9, 0.99, 0.999] {
        let estimated = hist.quantile_us(q) as f64;
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        let true_value = exact[rank - 1] as f64;
        let error = (estimated - true_value).abs() / true_value;
        assert!(
            error <= 0.125,
            "q={q}: estimate {estimated} vs exact {true_value} (error {:.1}%)",
            error * 100.0
        );
    }
}

/// The Prometheus bucket projection: `cumulative_us` produces a
/// monotone non-decreasing series, the final bound's count never
/// exceeds the total (observations above every bound live only in
/// +Inf), and each cumulative count is a true lower bound — every
/// observation ≤ an exported bound was recorded at or under it.
#[test]
fn histogram_prometheus_buckets_are_monotone_and_consistent() {
    use xmlvec::obs::registry::LATENCY_BOUNDS_US;
    use xmlvec::obs::Histogram;

    let hist = Histogram::new();
    let values: Vec<u64> = (0..2_000).map(|i| (i * i) % 7_000_000 + 1).collect();
    for &v in &values {
        hist.record_us(v);
    }

    let cumulative = hist.cumulative_us(&LATENCY_BOUNDS_US);
    assert_eq!(cumulative.len(), LATENCY_BOUNDS_US.len());
    for pair in cumulative.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "buckets must be cumulative: {cumulative:?}"
        );
    }
    assert!(
        *cumulative.last().unwrap() <= hist.count(),
        "+Inf (count) is the ceiling"
    );
    // Lower-bound property per exported bound: the histogram can
    // under-report a bucket (values land in a log bucket whose upper
    // edge exceeds the bound) but must never over-report it.
    for (bound, cum) in LATENCY_BOUNDS_US.iter().zip(&cumulative) {
        let exact = values.iter().filter(|&&v| v <= *bound).count() as u64;
        assert!(
            *cum <= exact,
            "bound {bound}us: cumulative {cum} exceeds exact {exact}"
        );
    }
}

/// `vx query | head`: the reader hanging up mid-stream is a success, not
/// an error — the CLI maps `BrokenPipe` on stdout to exit 0.
#[test]
fn closed_pipe_is_not_an_error() {
    let scratch = Scratch::new("pipe");
    // Enough output to overrun any pipe buffer (~19 bytes × 8000 rows).
    let doc = xmlvec::data::skyserver(11, 8000);
    let vec_doc = xmlvec::core::vectorize(&doc).unwrap();
    let store = scratch.path("ss-store");
    xmlvec::core::Store::save(&store, &vec_doc, xmlvec::core::Compaction::None).unwrap();

    let mut child = vx()
        .args([
            "query",
            store.to_str().unwrap(),
            r#"for $r in doc("ss")//PhotoObj return $r/objID"#,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut first = String::new();
    {
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        reader.read_line(&mut first).unwrap();
        // Dropping the reader closes our end; the writer sees EPIPE.
    }
    let status = child.wait().unwrap();
    assert!(!first.trim().is_empty(), "expected at least one value");
    assert_eq!(status.code(), Some(0), "broken pipe must exit 0");
}
