//! End-to-end tests for the compiled `vx` binary.
//!
//! Every test drives the real executable (`CARGO_BIN_EXE_vx`) over temp
//! stores built from the four corpus generators, and pins the CLI's
//! contract: reconstruction is byte-identical to the writer's
//! serialization of the ingested XML, `query` agrees with the in-process
//! engine, and the exit codes are part of the interface — `0` success,
//! `1` operational failure, `2` usage error.

use std::path::PathBuf;
use std::process::{Command, Output};
use xmlvec::xml::{write_document, Document, WriteOptions};
use xmlvec::{Query, QueryOutput};

fn vx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vx"))
}

fn run(args: &[&str]) -> Output {
    vx().args(args).output().expect("spawning vx")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn assert_code(output: &Output, code: i32, context: &str) {
    assert_eq!(
        output.status.code(),
        Some(code),
        "{context}: expected exit {code}\nstdout: {}\nstderr: {}",
        stdout(output),
        stderr(output)
    );
}

/// A scratch directory removed on drop, unique per test.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("vx-cli-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Serializes `doc` compactly, writes it to `dir/<name>.xml`, ingests it
/// into `dir/<name>-store`, and returns (xml text, store dir).
fn ingest(scratch: &Scratch, name: &str, doc: &Document, extra: &[&str]) -> (String, PathBuf) {
    let xml = write_document(doc, &WriteOptions::compact());
    let xml_file = scratch.path(&format!("{name}.xml"));
    std::fs::write(&xml_file, &xml).unwrap();
    let store = scratch.path(&format!("{name}-store"));
    let mut args = vec![
        "ingest",
        xml_file.to_str().unwrap(),
        store.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = run(&args);
    assert_code(&out, 0, &format!("ingest {name}"));
    (xml, store)
}

fn the_four_corpora() -> Vec<(&'static str, Document)> {
    vec![
        ("xmark", xmlvec::data::xmark(21, 40)),
        ("treebank", xmlvec::data::treebank(21, 60)),
        ("medline", xmlvec::data::medline(21, 40)),
        ("skyserver", xmlvec::data::skyserver(21, 60)),
    ]
}

/// ingest → stats → reconstruct on all four corpora: stats must succeed
/// and report the store, and `reconstruct` must reproduce the ingested
/// XML byte for byte, both to stdout and through `--out`.
#[test]
fn reconstruct_round_trips_all_four_corpora() {
    let scratch = Scratch::new("roundtrip");
    for (name, doc) in the_four_corpora() {
        let (xml, store) = ingest(&scratch, name, &doc, &[]);
        let store_arg = store.to_str().unwrap();

        let stats = run(&["stats", store_arg]);
        assert_code(&stats, 0, &format!("stats {name}"));
        assert!(
            stdout(&stats).contains("vectors"),
            "{name}: stats output missing summary"
        );

        let direct = run(&["reconstruct", store_arg]);
        assert_code(&direct, 0, &format!("reconstruct {name}"));
        assert_eq!(
            direct.stdout,
            xml.as_bytes(),
            "{name}: stdout reconstruction must be byte-identical"
        );

        let out_file = scratch.path(&format!("{name}-back.xml"));
        let to_file = run(&[
            "reconstruct",
            store_arg,
            "--out",
            out_file.to_str().unwrap(),
        ]);
        assert_code(&to_file, 0, &format!("reconstruct --out {name}"));
        assert_eq!(
            std::fs::read(&out_file).unwrap(),
            xml.as_bytes(),
            "{name}: --out reconstruction must be byte-identical"
        );
    }
}

/// The two ingest paths (streaming and `--dom`) yield stores that
/// reconstruct to the same bytes, with dictionary compaction on either.
#[test]
fn ingest_flags_preserve_reconstruction() {
    let scratch = Scratch::new("flags");
    let doc = xmlvec::data::skyserver(5, 80);
    let (xml, stream_store) = ingest(&scratch, "stream", &doc, &["--auto"]);
    let (_, dom_store) = ingest(&scratch, "dom", &doc, &["--dom", "--auto"]);
    for (label, store) in [("stream", &stream_store), ("dom", &dom_store)] {
        let out = run(&["reconstruct", store.to_str().unwrap()]);
        assert_code(&out, 0, label);
        assert_eq!(out.stdout, xml.as_bytes(), "{label} path round trip");
    }
}

/// `vx query --out values` emits exactly what `Query::run_with`
/// produces in-process, one value per line; `--out xml` matches
/// `QueryOutput::to_xml` for both value and document outputs.
#[test]
fn query_matches_in_process_engine() {
    let scratch = Scratch::new("query");
    let doc = xmlvec::data::xmark(9, 36);
    let (_, store) = ingest(&scratch, "xk", &doc, &[]);
    let store_arg = store.to_str().unwrap();
    let vec_doc = xmlvec::core::vectorize(&doc).unwrap();

    let queries = [
        r#"for $i in doc("xk")/site/regions/*/item where $i/location = "United States" return $i/name"#,
        r#"for $p in doc("xk")/site/people/person, $o in doc("xk")/site/open_auctions/open_auction
           where $o/seller/@person = $p/@id return $p/name"#,
        r#"for $a in doc("xk")/site/closed_auctions/closed_auction return <sold>{$a/price}{$a/date}</sold>"#,
    ];
    for xq in queries {
        let expected = Query::new(xq)
            .unwrap()
            .run_with(&vec_doc, &Default::default())
            .unwrap()
            .output;

        let values = run(&["query", store_arg, xq]);
        assert_code(&values, 0, xq);
        let expected_lines: String = expected
            .strings()
            .iter()
            .map(|s| format!("{s}\n"))
            .collect();
        assert_eq!(stdout(&values), expected_lines, "values mismatch for {xq}");

        let xml = run(&["query", store_arg, xq, "--out", "xml"]);
        assert_code(&xml, 0, xq);
        assert_eq!(
            stdout(&xml),
            format!("{}\n", expected.to_xml().unwrap()),
            "xml mismatch for {xq}"
        );
    }

    // A query with no matches succeeds with empty output.
    let empty = run(&[
        "query",
        store_arg,
        r#"for $x in doc("xk")//NoSuchTag return $x/y"#,
    ]);
    assert_code(&empty, 0, "empty result");
    assert_eq!(stdout(&empty), "");

    // Document outputs also flatten to one text value per line by default.
    let constructed = Query::new(queries[2])
        .unwrap()
        .run_with(&vec_doc, &Default::default())
        .unwrap()
        .output;
    assert!(matches!(constructed, QueryOutput::Document(_)));
    let flat = run(&["query", store_arg, queries[2]]);
    assert_eq!(
        stdout(&flat),
        constructed
            .strings()
            .iter()
            .map(|s| format!("{s}\n"))
            .collect::<String>()
    );
}

/// `vx explain` output is a stable, golden-checked surface: the planner
/// must pick sort-merge over the persistent value index for the
/// SQ3-shaped self-join, honor `--plan` forcing, fall back to the hash
/// strategy under `--no-indexes`, and route selective literal filters
/// through the value index. Byte-exact so downstream tooling can parse it.
#[test]
fn explain_golden_plan_is_stable() {
    let scratch = Scratch::new("explain");
    // 200 distinct objID/ra values: enough that `--auto` picks the v3
    // value-indexed encoding (the dictionary form needs ≤ 128 distinct).
    let mut xml = String::from("<sky>");
    for i in 0..200 {
        xml.push_str(&format!(
            "<PhotoObj><objID>{i:06}</objID><ra>{i}.5</ra></PhotoObj>"
        ));
    }
    xml.push_str("</sky>");
    let xml_file = scratch.path("sky.xml");
    std::fs::write(&xml_file, &xml).unwrap();
    let store = scratch.path("sky-store");
    let out = run(&[
        "ingest",
        xml_file.to_str().unwrap(),
        store.to_str().unwrap(),
        "--auto",
    ]);
    assert_code(&out, 0, "ingest explain fixture");
    let store_arg = store.to_str().unwrap();

    let sq3 = r#"for $a in doc("sky-store")//PhotoObj, $b in doc("sky-store")//PhotoObj where $a/objID = $b/objID return $b/ra"#;
    let join_plan = |strategy: &str, access: &str| {
        format!(
            "variables:\n  \
               $a := doc(\"sky-store\")//PhotoObj  occurrences=200 match=summary\n  \
               $b := doc(\"sky-store\")//PhotoObj  occurrences=200 match=summary\n\
             joins:\n  \
               $a/objID = $b/objID  strategy={strategy} access={access} probe_values=200 build_values=200\n\
             output: values\n"
        )
    };

    for (args, expected) in [
        (
            vec!["explain", store_arg, sq3],
            join_plan("merge", "persistent-index"),
        ),
        (
            vec!["explain", store_arg, sq3, "--plan", "inl"],
            join_plan("inl", "persistent-index"),
        ),
        (
            vec!["explain", store_arg, sq3, "--no-indexes"],
            join_plan("hash", "none"),
        ),
        (
            vec![
                "explain",
                store_arg,
                r#"for $a in doc("sky-store")//PhotoObj where $a/objID = "000007" return $a/ra"#,
            ],
            "variables:\n  $a := doc(\"sky-store\")//PhotoObj  occurrences=200 match=summary\n\
             filters:\n  $a/objID = \"000007\"  access=value-index\n\
             output: values\n"
                .to_string(),
        ),
    ] {
        let out = run(&args);
        assert_code(&out, 0, &format!("{args:?}"));
        assert_eq!(stdout(&out), expected, "plan drifted for {args:?}");
    }
}

/// Missing stores are operational failures: exit 1, a `vx:` message on
/// stderr, nothing on stdout — for all three store-reading commands.
#[test]
fn missing_store_fails_with_exit_1() {
    let scratch = Scratch::new("missing");
    let nowhere = scratch.path("does-not-exist");
    let nowhere = nowhere.to_str().unwrap();
    for args in [
        vec!["stats", nowhere],
        vec!["query", nowhere, r#"for $x in doc("d")/a return $x/b"#],
        vec!["reconstruct", nowhere],
    ] {
        let out = run(&args);
        assert_code(&out, 1, &format!("{args:?}"));
        assert!(
            stderr(&out).starts_with("vx: "),
            "{args:?}: structured message expected, got {:?}",
            stderr(&out)
        );
        assert_eq!(stdout(&out), "", "{args:?}: no output on failure");
    }
}

/// The integrity gate: a store whose `.vec` file is truncated is refused
/// by `stats` (and the strict loaders behind `query`/`reconstruct`) with
/// exit 1 and no partial stdout.
#[test]
fn damaged_store_is_refused_whole() {
    let scratch = Scratch::new("damaged");
    let doc = xmlvec::data::medline(3, 30);
    let (_, store) = ingest(&scratch, "ml", &doc, &[]);
    let store_arg = store.to_str().unwrap();

    // Truncate the first vector file to half its length.
    let victim = store.join("v000000.vec");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    for args in [
        vec!["stats", store_arg],
        vec![
            "query",
            store_arg,
            r#"for $c in doc("ml")//MedlineCitation return $c/PMID"#,
        ],
        vec!["reconstruct", store_arg],
    ] {
        let out = run(&args);
        assert_code(&out, 1, &format!("{args:?}"));
        assert_eq!(stdout(&out), "", "{args:?}: no partial output");
        assert!(stderr(&out).starts_with("vx: "), "{args:?}");
    }

    // A corrupted catalog is refused the same way.
    let catalog = store.join("catalog.json");
    let text = std::fs::read_to_string(&catalog).unwrap();
    std::fs::write(&catalog, text.replace("vectors", "victors")).unwrap();
    let out = run(&["stats", store_arg]);
    assert_code(&out, 1, "stats with damaged catalog");
    assert_eq!(stdout(&out), "");
}

/// Malformed command lines are usage errors: exit 2 with the usage text
/// on stderr — distinct from operational failures.
#[test]
fn bad_arguments_exit_2_with_usage() {
    let cases: Vec<Vec<&str>> = vec![
        vec![],                                        // no command
        vec!["frobnicate"],                            // unknown command
        vec!["ingest", "only-one-arg"],                // missing operand
        vec!["stats"],                                 // missing operand
        vec!["stats", "a", "--wat"],                   // unknown flag
        vec!["query", "store-only"],                   // missing query
        vec!["query", "s", "q", "--out", "csv"],       // bad --out mode
        vec!["explain", "store-only"],                 // missing query
        vec!["explain", "s", "q", "--plan", "zigzag"], // unknown strategy
        vec!["reconstruct"],                           // missing operand
        vec!["reconstruct", "s", "--out"],             // --out without value
    ];
    for args in cases {
        let out = run(&args);
        assert_code(&out, 2, &format!("{args:?}"));
        assert!(
            stderr(&out).contains("usage:"),
            "{args:?}: usage text expected on stderr"
        );
    }
}

/// Query-side failures on a healthy store are operational (exit 1) and
/// carry the engine's structured message through to stderr.
#[test]
fn query_errors_are_structured() {
    let scratch = Scratch::new("queryerr");
    let doc = xmlvec::data::skyserver(1, 10);
    let (_, store) = ingest(&scratch, "ss", &doc, &[]);
    let store_arg = store.to_str().unwrap();

    // Outside the fragment: the structured Unsupported error surfaces.
    let unsupported = run(&[
        "query",
        store_arg,
        r#"for $x in doc("ss")//PhotoObj return $x"#,
    ]);
    assert_code(&unsupported, 1, "unsupported construct");
    assert!(
        stderr(&unsupported).contains("unsupported query construct"),
        "got {:?}",
        stderr(&unsupported)
    );

    // Unparseable query text.
    let parse_error = run(&["query", store_arg, "for $x in"]);
    assert_code(&parse_error, 1, "parse error");
    assert!(stderr(&parse_error).starts_with("vx: query:"));
}

/// `ingest` on a nonexistent input file is an operational failure.
#[test]
fn ingest_missing_input_fails() {
    let scratch = Scratch::new("noinput");
    let store = scratch.path("store");
    let out = run(&["ingest", "/no/such/input.xml", store.to_str().unwrap()]);
    assert_code(&out, 1, "ingest missing input");
    assert!(stderr(&out).starts_with("vx: "));
}

/// `vx append` + `vx compact`: appended documents answer queries before
/// and after compaction, the compacted store reconstructs to the
/// combined document, and both commands report what they did.
#[test]
fn append_and_compact_round_trip() {
    let scratch = Scratch::new("append");
    let doc = xmlvec::data::medline(7, 20);
    let (_, store) = ingest(&scratch, "ml", &doc, &[]);
    let store_arg = store.to_str().unwrap();

    // Two more medline batches, serialized as standalone documents with
    // the same root tag.
    let extra1 = xmlvec::data::medline(8, 5);
    let extra2 = xmlvec::data::medline(9, 5);
    let extra1_file = scratch.path("extra1.xml");
    let extra2_file = scratch.path("extra2.xml");
    std::fs::write(
        &extra1_file,
        write_document(&extra1, &WriteOptions::compact()),
    )
    .unwrap();
    std::fs::write(
        &extra2_file,
        write_document(&extra2, &WriteOptions::compact()),
    )
    .unwrap();

    let xq = r#"for $c in doc("ml")//MedlineCitation return $c/PMID"#;
    let count_lines = |out: &Output| stdout(out).lines().count();
    let before = run(&["query", store_arg, xq]);
    assert_code(&before, 0, "query before append");

    let appended = run(&[
        "append",
        store_arg,
        extra1_file.to_str().unwrap(),
        extra2_file.to_str().unwrap(),
    ]);
    assert_code(&appended, 0, "append");
    assert!(
        stdout(&appended).starts_with("appended 2 docs"),
        "append report: {}",
        stdout(&appended)
    );

    // The WAL overlay serves immediately: 10 more citations.
    let after = run(&["query", store_arg, xq]);
    assert_code(&after, 0, "query after append");
    assert_eq!(count_lines(&after), count_lines(&before) + 10);

    // stats --metrics reports the journal.
    let stats = run(&["stats", store_arg, "--metrics"]);
    assert_code(&stats, 0, "stats with pending WAL");
    assert!(
        stdout(&stats).contains("2 pending docs"),
        "{}",
        stdout(&stats)
    );

    // Compact, then identical answers from the new generation.
    let compacted = run(&["compact", store_arg]);
    assert_code(&compacted, 0, "compact");
    assert!(
        stdout(&compacted).starts_with("compacted"),
        "compact report: {}",
        stdout(&compacted)
    );
    let final_q = run(&["query", store_arg, xq]);
    assert_eq!(
        stdout(&final_q),
        stdout(&after),
        "answers changed across compact"
    );

    // A second compact is a no-op.
    let again = run(&["compact", store_arg]);
    assert_code(&again, 0, "compact no-op");
    assert!(stdout(&again).starts_with("nothing to compact"));

    // The compacted store reconstructs to the combined document.
    let mut combined = doc.clone();
    combined.root.children.extend(extra1.root.children.clone());
    combined.root.children.extend(extra2.root.children.clone());
    let expected = write_document(&combined, &WriteOptions::compact());
    let back = run(&["reconstruct", store_arg]);
    assert_code(&back, 0, "reconstruct after compact");
    assert_eq!(stdout(&back), expected, "compacted reconstruction drifted");
}

/// Append validation failures are operational (exit 1) and leave the
/// store serving exactly what it served before.
#[test]
fn append_rejects_mismatched_documents() {
    let scratch = Scratch::new("appendbad");
    let doc = xmlvec::data::skyserver(2, 10);
    let (_, store) = ingest(&scratch, "ss", &doc, &[]);
    let store_arg = store.to_str().unwrap();
    let bad = scratch.path("bad.xml");
    std::fs::write(&bad, "<wrongroot><x>1</x></wrongroot>").unwrap();
    let out = run(&["append", store_arg, bad.to_str().unwrap()]);
    assert_code(&out, 1, "append wrong root");
    assert!(stderr(&out).contains("does not match store root"));

    // Usage errors for both commands.
    for args in [
        vec!["append", store_arg],
        vec!["append"],
        vec!["compact"],
        vec!["compact", store_arg, "--wat"],
    ] {
        let out = run(&args);
        assert_code(&out, 2, &format!("{args:?}"));
    }
}
