//! Differential suite for the streaming ingest pipeline (PR 3 tentpole).
//!
//! The contract under test: for any document and any options,
//! `Store::ingest_stream` (event pipeline, no DOM, spill-to-disk vectors)
//! produces a store directory **byte-identical** to `parse` → `vectorize`
//! → `Store::save`. Every test here builds both and compares the full
//! file sets: `skeleton.vxsk`, every `v*.vec`, and `catalog.json`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use xmlvec::core::{
    reconstruct, vectorize_with, Compaction, IngestOptions, Store, VectorizeOptions,
};
use xmlvec::data::{medline, skyserver, Rng};
use xmlvec::xml::{parse, write_document, Document, Element, Node, WriteOptions};

fn temp_base(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vx-ingest-diff-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file in a store directory, by name.
fn store_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        files.insert(name, fs::read(entry.path()).unwrap());
    }
    files
}

/// Builds the store both ways from the same XML text and asserts the
/// directories are byte-identical. Returns the streaming report.
fn assert_byte_identical(
    base: &Path,
    label: &str,
    xml: &str,
    compaction: Compaction,
    ingest: &IngestOptions,
) -> xmlvec::core::IngestReport {
    let dom_dir = base.join(format!("{label}-dom"));
    let stream_dir = base.join(format!("{label}-stream"));

    let doc = parse(xml).unwrap_or_else(|e| panic!("{label}: parse: {e}"));
    let options = VectorizeOptions {
        drop_unrepresentable: ingest.drop_unrepresentable,
    };
    let vec_doc =
        vectorize_with(&doc, &options).unwrap_or_else(|e| panic!("{label}: vectorize: {e}"));
    Store::save(&dom_dir, &vec_doc, compaction).unwrap_or_else(|e| panic!("{label}: save: {e}"));

    let report = Store::ingest_stream(&stream_dir, xml.as_bytes(), ingest)
        .unwrap_or_else(|e| panic!("{label}: ingest_stream: {e}"));

    assert!(
        !stream_dir.join(".ingest.spill").exists(),
        "{label}: spill file must be removed after ingest"
    );
    let dom_files = store_files(&dom_dir);
    let stream_files = store_files(&stream_dir);
    assert_eq!(
        dom_files.keys().collect::<Vec<_>>(),
        stream_files.keys().collect::<Vec<_>>(),
        "{label}: file sets differ"
    );
    for (name, bytes) in &dom_files {
        assert_eq!(
            bytes, &stream_files[name],
            "{label}: `{name}` differs between DOM and streaming ingest"
        );
    }
    report
}

fn both_ways(base: &Path, label: &str, xml: &str, compaction: Compaction) {
    let ingest = IngestOptions {
        compaction,
        ..IngestOptions::default()
    };
    assert_byte_identical(base, label, xml, compaction, &ingest);
}

#[test]
fn generated_corpora_are_byte_identical() {
    let base = temp_base("corpora");
    let opts = WriteOptions::compact();
    for (name, doc) in [
        ("ml-small", medline(11, 40)),
        ("ml-medium", medline(12, 300)),
        ("ss-small", skyserver(21, 60)),
        ("ss-medium", skyserver(22, 400)),
    ] {
        let xml = write_document(&doc, &opts);
        for (compaction, sub) in [(Compaction::None, "plain"), (Compaction::Auto, "auto")] {
            both_ways(&base, &format!("{name}-{sub}"), &xml, compaction);
        }
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn edge_case_documents_are_byte_identical() {
    let base = temp_base("edge");
    let cases: &[(&str, &str)] = &[
        ("empty-root", "<a/>"),
        (
            "attrs",
            r#"<r><e id="1" k="x">v</e><e id="2" k="x">w</e></r>"#,
        ),
        ("empty-cdata", "<a><![CDATA[]]></a>"),
        ("cdata-split", "<a>t<![CDATA[c]]>u</a>"),
        ("mixed", "<p>one <b>two</b> three <b>four</b></p>"),
        ("entities", "<a>&lt;tag&gt; &amp; &#x2713;</a>"),
        ("unicode", "<données été=\"öß\">héllo ✓ — 漢字</données>"),
        ("runs", "<t><r>1</r><r>2</r><r>3</r><r>4</r><r>5</r></t>"),
        ("deep", "<a><b><c><d><e><f>leaf</f></e></d></c></b></a>"),
        (
            "decl-doctype",
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><!DOCTYPE r><r><v>1</v></r>",
        ),
        (
            "prolog-misc",
            "<!-- pre --><?style x?><r>v</r><!-- post -->",
        ),
        ("whitespace", "<a>\n  <b> padded </b>\n  <b>\t</b>\n</a>"),
        (
            "empty-values",
            r#"<r><e k="">text</e><e k="">text</e><e k=""></e></r>"#,
        ),
    ];
    for (name, xml) in cases {
        for (compaction, sub) in [(Compaction::None, "plain"), (Compaction::Auto, "auto")] {
            both_ways(&base, &format!("{name}-{sub}"), xml, compaction);
        }
    }
    let _ = fs::remove_dir_all(&base);
}

const TAGS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
const WORDS: [&str; 5] = ["x", "yy", "zzz", "", "mixed content"];

/// Same shape as `tests/prop_roundtrip.rs`: repetition-biased random
/// attributed elements, so runs, sharing, and `@`-paths all trigger.
fn random_element(rng: &mut Rng, depth: u32) -> Element {
    let mut element = Element::new(TAGS[rng.below(TAGS.len() as u64) as usize]);
    if rng.below(4) == 0 {
        element = element.with_attr("id", format!("{}", rng.below(100)));
    }
    if rng.below(8) == 0 {
        element = element.with_attr("k", WORDS[rng.below(5) as usize]);
    }
    let children = rng.below(5);
    for _ in 0..children {
        if rng.below(2) == 0 && !element.children.is_empty() {
            let last = element.children.last().unwrap().clone();
            element.children.push(last);
            continue;
        }
        match rng.below(3) {
            0 if depth > 0 => {
                let child = random_element(rng, depth - 1);
                element.children.push(child.into_node());
            }
            1 => element
                .children
                .push(Node::Text(WORDS[rng.below(5) as usize].to_string())),
            _ => {
                let child = Element::new(TAGS[rng.below(6) as usize])
                    .with_text(format!("{}", rng.below(10)));
                element.children.push(child.into_node());
            }
        }
    }
    element
}

#[test]
fn random_attributed_documents_are_byte_identical() {
    let base = temp_base("random");
    let opts = WriteOptions::compact();
    for seed in 0..60u64 {
        let mut rng = Rng::new(seed);
        let doc = Document::from_root(random_element(&mut rng, 4));
        let xml = write_document(&doc, &opts);
        let compaction = if seed % 2 == 0 {
            Compaction::None
        } else {
            Compaction::Auto
        };
        both_ways(&base, &format!("seed-{seed}"), &xml, compaction);
    }
    let _ = fs::remove_dir_all(&base);
}

/// Size-parameterized large-document smoke: a corpus big enough that the
/// per-path tail pages overflow into the spill file, driven through a
/// deliberately tiny buffer pool. `VX_SMOKE_ROWS` scales it up in CI.
#[test]
fn large_document_page_spill_smoke() {
    let rows: usize = std::env::var("VX_SMOKE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let base = temp_base("spill");
    let xml = write_document(&skyserver(77, rows), &WriteOptions::compact());
    let ingest = IngestOptions {
        compaction: Compaction::Auto,
        drop_unrepresentable: false,
        spill_frames: 4,
    };
    let report = assert_byte_identical(&base, "spill", &xml, Compaction::Auto, &ingest);
    assert!(
        report.spill_pages > 0,
        "{rows} rows must exceed the one-page-per-path tail budget \
         (spilled {} pages)",
        report.spill_pages
    );
    assert!(
        report.pager.misses > 0,
        "finishing vectors must re-read spilled pages through the pool"
    );

    // The streamed store is a real store: it opens strictly and
    // reconstructs to the original document.
    let (loaded, catalog) = Store::open(&base.join("spill-stream")).unwrap();
    assert_eq!(catalog.vectors.len(), 7);
    assert_eq!(catalog.vectors[0].count, rows as u64);
    let back = reconstruct(&loaded).unwrap();
    assert_eq!(write_document(&back, &WriteOptions::compact()), xml);
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn strict_mode_matches_dom_on_comments_and_pis() {
    let base = temp_base("strict");
    // Strict: both paths must reject, with the same message.
    let xml = "<a><b>ok</b><!-- nope --></a>";
    let doc = parse(xml).unwrap();
    let dom_err = vectorize_with(&doc, &VectorizeOptions::default()).unwrap_err();
    let stream_err = Store::ingest_stream(
        &base.join("strict"),
        xml.as_bytes(),
        &IngestOptions::default(),
    )
    .unwrap_err();
    assert_eq!(dom_err.to_string(), stream_err.to_string());

    // Dropping mode: identical stores.
    let ingest = IngestOptions {
        drop_unrepresentable: true,
        ..IngestOptions::default()
    };
    assert_byte_identical(
        &base,
        "drop",
        "<a><b>ok</b><!-- gone --><?pi also gone?><b>ok</b></a>",
        Compaction::None,
        &ingest,
    );
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn failed_ingest_leaves_no_catalog_and_no_spill() {
    let base = temp_base("atomic");
    let dir = base.join("fresh");
    // Malformed XML: the pipeline dies mid-stream.
    let err = Store::ingest_stream(&dir, "<a><b>1</b><c>".as_bytes(), &IngestOptions::default());
    assert!(err.is_err());
    assert!(
        !dir.join("catalog.json").exists(),
        "failed ingest must not publish a catalog"
    );
    assert!(
        !dir.join(".ingest.spill").exists(),
        "failed ingest must clean up its spill file"
    );
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn failed_reingest_preserves_the_previous_store() {
    let base = temp_base("reingest");
    let dir = base.join("store");
    Store::ingest_stream(
        &dir,
        "<r><v>1</v><v>2</v></r>".as_bytes(),
        &IngestOptions::default(),
    )
    .unwrap();
    let before = store_files(&dir);

    // A re-ingest that fails during parsing must leave the directory
    // exactly as it was: old catalog, old skeleton, old vectors.
    assert!(
        Store::ingest_stream(&dir, "<r><v>3</v".as_bytes(), &IngestOptions::default()).is_err()
    );
    assert_eq!(before, store_files(&dir));
    let (loaded, _) = Store::open(&dir).unwrap();
    let back = reconstruct(&loaded).unwrap();
    assert_eq!(
        write_document(&back, &WriteOptions::compact()),
        "<r><v>1</v><v>2</v></r>"
    );
    let _ = fs::remove_dir_all(&base);
}
