//! Crash-recovery tests: the `vx` binary is spawned with `VX_CRASH`
//! armed so it aborts (the `vx-obs` crash injection hooks) at a chosen
//! point mid-append or mid-compaction, and the store is then reopened
//! in-process to assert recovery lands on a consistent state — query
//! results exactly equal to the pre-append or post-append document,
//! never a torn mix.
//!
//! The crash points are exercised in a seeded-random order (override
//! with `VX_CRASH_SEED=n`) so interleavings vary across seeds while any
//! failure reproduces exactly from the seed printed in the panic.
//!
//! The differential test at the bottom pins the other half of the
//! durability contract: an appended-then-compacted store is
//! byte-identical — skeleton, vector files, catalog — to a from-scratch
//! ingest of the combined document, and answers every join strategy
//! (`hash`, `inl`, `merge`) identically from both.

use std::path::{Path, PathBuf};
use std::process::Command;
use xmlvec::core::{AppendOptions, Compaction, Store, StoreHandle};
use xmlvec::engine::{JoinStrategy, RunOptions};
use xmlvec::xml::{write_document, Document, WriteOptions};
use xmlvec::Query;

fn vx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vx"))
}

/// A scratch directory removed on drop, unique per test.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("vx-crash-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The test seed: deterministic by default, overridable for new
/// interleavings. Every panic message carries it.
fn seed() -> u64 {
    std::env::var("VX_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// Minimal LCG (Knuth's MMIX constants) — the offline workspace has no
/// rand crate, and determinism-from-seed is the point here.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Seeded Fisher–Yates: the crash points all run every time; only the
/// order (and with it the temp-dir reuse pattern) varies by seed.
fn shuffled<T>(mut items: Vec<T>, lcg: &mut Lcg) -> Vec<T> {
    for i in (1..items.len()).rev() {
        let j = (lcg.next() as usize) % (i + 1);
        items.swap(i, j);
    }
    items
}

fn write_xml(path: &Path, doc: &Document) {
    std::fs::write(path, write_document(doc, &WriteOptions::compact())).unwrap();
}

/// The query answers of a store, as the engine's line-per-value output.
fn answers(dir: &Path, xq: &str) -> Vec<String> {
    let handle = StoreHandle::open(dir).expect("store reopens after crash");
    Query::new(xq)
        .unwrap()
        .run_with(&handle, &RunOptions::default())
        .expect("query runs after recovery")
        .output
        .strings()
}

fn combined(base: &Document, extras: &[&Document]) -> Document {
    let mut dom = base.clone();
    for extra in extras {
        dom.root.children.extend(extra.root.children.clone());
    }
    dom
}

fn in_memory_answers(doc: &Document, xq: &str) -> Vec<String> {
    let vec_doc = xmlvec::core::vectorize(doc).unwrap();
    Query::new(xq)
        .unwrap()
        .run_with(&vec_doc, &RunOptions::default())
        .unwrap()
        .output
        .strings()
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// Spawns a vx command armed to abort at `point` and asserts it did
/// crash there rather than exit cleanly.
fn run_crashing(args: &[&str], point: &str, seed: u64) {
    let output = vx()
        .args(args)
        .env("VX_CRASH", point)
        .output()
        .expect("spawning vx");
    assert!(
        !output.status.success(),
        "seed {seed}: vx {args:?} was armed to crash at `{point}` but exited cleanly\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

const XQ: &str = r#"for $c in doc("store")//MedlineCitation return $c/PMID"#;

/// Killing `vx append` at any injected point leaves a store that opens
/// to exactly the pre-append state (crash before the batch was durable,
/// including a torn half-written frame) or the post-append state (crash
/// after the fsync); a follow-up append always succeeds.
#[test]
fn kill_mid_append_recovers_pre_or_post_state() {
    let seed = seed();
    let mut lcg = Lcg(seed);
    let scratch = Scratch::new("append");
    let base = xmlvec::data::medline(7, 12);
    let extra = xmlvec::data::medline(8, 4);
    let extra_file = scratch.path("extra.xml");
    write_xml(&extra_file, &extra);

    let pre = in_memory_answers(&base, XQ);
    let post = in_memory_answers(&combined(&base, &[&extra]), XQ);
    assert_eq!(post.len(), pre.len() + 4);

    // (crash point, does the batch survive?)
    let points = vec![
        ("wal.before_append", false),
        ("wal.torn_append", false),
        ("wal.after_append", true),
    ];
    for (point, survives) in shuffled(points, &mut lcg) {
        let store = scratch.path(&format!("store-{point}"));
        let doc = xmlvec::core::vectorize(&base).unwrap();
        Store::save(&store, &doc, Compaction::None).unwrap();

        run_crashing(
            &[
                "append",
                store.to_str().unwrap(),
                extra_file.to_str().unwrap(),
            ],
            point,
            seed,
        );
        let expected = if survives { &post } else { &pre };
        assert_eq!(
            &answers(&store, XQ),
            expected,
            "seed {seed}: wrong recovery state after crash at `{point}`"
        );

        // The torn tail (if any) was salvaged; appending again works and
        // lands the batch exactly once.
        let report = Store::append_batch(
            &store,
            &[std::fs::read(&extra_file).unwrap()],
            &AppendOptions::default(),
        )
        .unwrap();
        assert_eq!(
            report.docs, 1,
            "seed {seed}: post-crash append at `{point}`"
        );
        let expected = if survives {
            in_memory_answers(&combined(&base, &[&extra, &extra]), XQ)
        } else {
            post.clone()
        };
        assert_eq!(
            answers(&store, XQ),
            expected,
            "seed {seed}: post-crash append drifted after `{point}`"
        );
    }
}

/// Killing `vx compact` at any injected point never loses an append:
/// the store reopens to exactly the appended state — from the WAL if
/// the crash hit before the manifest swap, from the new generation
/// (without double-applying the still-present WAL records) if after —
/// and a follow-up compaction completes and drains the journal.
#[test]
fn kill_mid_compaction_recovers_appended_state() {
    let seed = seed();
    let mut lcg = Lcg(seed);
    let scratch = Scratch::new("compact");
    let base = xmlvec::data::medline(11, 10);
    let extra = xmlvec::data::medline(12, 5);
    let post = in_memory_answers(&combined(&base, &[&extra]), XQ);

    // One appended-but-uncompacted store, copied per crash point.
    let origin = scratch.path("origin");
    let doc = xmlvec::core::vectorize(&base).unwrap();
    Store::save(&origin, &doc, Compaction::None).unwrap();
    let extra_bytes = write_document(&extra, &WriteOptions::compact()).into_bytes();
    Store::append_batch(&origin, &[extra_bytes], &AppendOptions::default()).unwrap();

    let points = vec![
        "compact.before_gen",
        "store.mid_save",
        "compact.before_current",
        "compact.after_current",
    ];
    for point in shuffled(points, &mut lcg) {
        let store = scratch.path(&format!("store-{}", point.replace('.', "-")));
        copy_dir(&origin, &store);

        run_crashing(&["compact", store.to_str().unwrap()], point, seed);
        assert_eq!(
            answers(&store, XQ),
            post,
            "seed {seed}: appended state lost after crash at `{point}`"
        );

        // Recovery completes the job: compaction succeeds (or no-ops if
        // the manifest swap already landed), the WAL drains, and the
        // answers never change.
        Store::compact(&store, Compaction::None).unwrap();
        let report = Store::open_report(&store).unwrap();
        assert_eq!(
            report.wal.pending_records, 0,
            "seed {seed}: WAL still pending after recovery from `{point}`"
        );
        assert_eq!(report.generation, 1, "seed {seed}: `{point}`");
        assert_eq!(
            answers(&store, XQ),
            post,
            "seed {seed}: recovery compaction changed answers after `{point}`"
        );
    }
}

/// The byte-identity contract: append + compact must be
/// indistinguishable on disk from never having appended at all — the
/// generation directory's skeleton, vector files, and catalog match a
/// from-scratch ingest of the combined document byte for byte, and the
/// two stores answer identically under every join strategy.
#[test]
fn compacted_store_is_byte_identical_to_fresh_ingest() {
    let scratch = Scratch::new("differential");
    let base = xmlvec::data::medline(21, 15);
    let extra1 = xmlvec::data::medline(22, 6);
    let extra2 = xmlvec::data::medline(23, 6);

    // Appended + compacted store.
    let store = scratch.path("store");
    Store::save(
        &store,
        &xmlvec::core::vectorize(&base).unwrap(),
        Compaction::Auto,
    )
    .unwrap();
    for extra in [&extra1, &extra2] {
        let bytes = write_document(extra, &WriteOptions::compact()).into_bytes();
        Store::append_batch(&store, &[bytes], &AppendOptions::default()).unwrap();
    }
    let report = Store::compact(&store, Compaction::Auto).unwrap();
    assert!(report.compacted);

    // From-scratch ingest of the combined document.
    let fresh = scratch.path("fresh");
    let dom = combined(&base, &[&extra1, &extra2]);
    Store::save(
        &fresh,
        &xmlvec::core::vectorize(&dom).unwrap(),
        Compaction::Auto,
    )
    .unwrap();

    // Same file set, same bytes.
    let files = |dir: &Path| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    let compacted_files = files(&report.gen_dir);
    let fresh_files = files(&fresh);
    assert_eq!(
        compacted_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        fresh_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "file sets differ"
    );
    for ((name, compacted), (_, fresh)) in compacted_files.iter().zip(&fresh_files) {
        assert_eq!(compacted, fresh, "`{name}` differs from a fresh ingest");
    }

    // Identical answers under every forced join strategy, from both the
    // layered store and the fresh one.
    let join = r#"for $a in doc("d")//MedlineCitation, $b in doc("d")//MedlineCitation
                  where $a/PMID = $b/PMID return $b/PMID"#;
    let store_handle = StoreHandle::open(&store).unwrap();
    let fresh_handle = StoreHandle::open(&fresh).unwrap();
    for strategy in [
        JoinStrategy::Hash,
        JoinStrategy::IndexNestedLoop,
        JoinStrategy::SortMerge,
    ] {
        let options = RunOptions {
            strategy: Some(strategy),
            ..RunOptions::default()
        };
        let query = Query::new(join).unwrap();
        let from_store = query.run_with(&store_handle, &options).unwrap().output;
        let from_fresh = query.run_with(&fresh_handle, &options).unwrap().output;
        assert_eq!(
            from_store.strings(),
            from_fresh.strings(),
            "{strategy:?} answers differ between compacted and fresh stores"
        );
    }
}
