//! End-to-end tests for `vx serve`: a real server on a loopback port,
//! driven by raw TCP clients — concurrent queries against one shared
//! store, the structured error contract, metrics, and graceful
//! shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use xmlvec::core::json::{self, Json};
use xmlvec::serve::{ServeOptions, Server};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vx-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    xmlvec::bench::build_corpus_store(&dir, "xk", 40).expect("tiny store builds");
    dir
}

/// Starts a server on an ephemeral port; returns its address and the
/// thread running the accept loop (joins cleanly after `/shutdown`).
fn start(dirs: Vec<PathBuf>, threads: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    start_with(dirs, threads, &ServeOptions::default())
}

/// `start` with explicit [`ServeOptions`] — tests pin `slow_ms` here
/// instead of racing on the process-global `VX_SLOW_MS` variable.
fn start_with(
    dirs: Vec<PathBuf>,
    threads: usize,
    options: &ServeOptions,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let dir_refs: Vec<&Path> = dirs.iter().map(PathBuf::as_path).collect();
    let server =
        Server::bind_with(&dir_refs, "127.0.0.1:0", threads, options).expect("bind loopback");
    let addr = server.local_addr();
    let worker = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, worker)
}

/// A one-shot HTTP/1.1 exchange: returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: vx\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn shutdown(addr: SocketAddr, worker: std::thread::JoinHandle<()>) {
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    worker.join().expect("server thread exits after shutdown");
}

const QUERY: &str = r#"for $i in doc("xk")/site/regions/*/item return $i/name"#;

#[test]
fn concurrent_clients_get_identical_answers() {
    let dir = temp_store("concurrent");
    let (addr, worker) = start(vec![dir.clone()], 4);

    let body = format!("{{\"query\": {}}}", json_str(QUERY));
    let (status, first) = request(addr, "POST", "/query", &body);
    assert_eq!(status, 200, "first query failed: {first}");
    let parsed = json::parse(&first).expect("JSON answer");
    let count = parsed.get("count").and_then(Json::as_u64).expect("count");
    assert!(count > 0, "tiny store should have items");
    let expected_values = parsed.get("values").cloned().expect("values array");

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let body = &body;
            let expected = &expected_values;
            scope.spawn(move || {
                for _ in 0..5 {
                    let (status, answer) = request(addr, "POST", "/query", body);
                    assert_eq!(status, 200, "concurrent query failed: {answer}");
                    let parsed = json::parse(&answer).expect("JSON answer");
                    assert_eq!(parsed.get("values"), Some(expected));
                }
            });
        }
    });

    // After the warm-up request, every one of the 40 concurrent
    // requests must have hit the compiled-query cache.
    let (status, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&stats).expect("stats JSON");
    let server = parsed.get("server").expect("server section");
    let hits = server
        .get("query_cache_hits")
        .and_then(Json::as_u64)
        .expect("cache hits");
    assert!(hits >= 40, "expected >=40 cache hits, saw {hits}");
    let query_count = server
        .get("endpoints")
        .and_then(|e| e.get("query"))
        .and_then(|q| q.get("count"))
        .and_then(Json::as_u64)
        .expect("query endpoint count");
    assert!(
        query_count >= 41,
        "histogram missed requests: {query_count}"
    );

    shutdown(addr, worker);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn error_contract_is_structured_json() {
    // Two stores: the storeless requests below exercise the by-name
    // document resolution path, where `doc("missing")` is reachable.
    let dir = temp_store("errors");
    let dir2 = temp_store("errors2");
    let (addr, worker) = start(vec![dir.clone(), dir2.clone()], 2);

    // Malformed JSON body → 400 bad_request, carrying a request id.
    let (status, body) = request(addr, "POST", "/query", "{not json");
    assert_eq!(status, 400);
    assert_eq!(error_kind(&body), "bad_request");
    assert!(
        !request_id(&body).is_empty(),
        "error body must carry request_id: {body}"
    );

    // Unparseable query → 400 bad_query.
    let (status, body) = request(addr, "POST", "/query", r#"{"query": "for $x in"}"#);
    assert_eq!(status, 400);
    assert_eq!(error_kind(&body), "bad_query");

    // Unknown store → 404 unknown_store.
    let (status, body) = request(
        addr,
        "POST",
        "/query",
        &format!("{{\"store\": \"nope\", \"query\": {}}}", json_str(QUERY)),
    );
    assert_eq!(status, 404);
    assert_eq!(error_kind(&body), "unknown_store");

    // Unknown document inside the query → 400 unknown_document.
    let (status, body) = request(
        addr,
        "POST",
        "/query",
        r#"{"query": "for $x in doc(\"missing\")/a return $x/b"}"#,
    );
    assert_eq!(status, 400);
    assert_eq!(error_kind(&body), "unknown_document");

    // Unknown endpoint → 404; wrong method on a known one → 405.
    // Both carry request ids like every other structured error.
    let (status, body) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(!request_id(&body).is_empty(), "404 body: {body}");
    let (status, body) = request(addr, "GET", "/query", "");
    assert_eq!(status, 405);
    assert!(!request_id(&body).is_empty(), "405 body: {body}");

    // Every structured error's request_id is distinct — ids are
    // allocated per request, not per connection or per kind.
    let mut ids = std::collections::HashSet::new();
    for _ in 0..4 {
        let (_, body) = request(addr, "POST", "/query", "{not json");
        assert!(ids.insert(request_id(&body)), "request_id reused: {body}");
    }

    // Healthz still fine after all those errors.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));

    shutdown(addr, worker);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn stats_and_xml_output_and_keep_alive() {
    let dir = temp_store("stats");
    let (addr, worker) = start(vec![dir.clone()], 2);

    let (status, body) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    let stores = parsed.get("stores").and_then(Json::as_array).unwrap();
    assert_eq!(stores.len(), 1);
    assert!(stores[0].get("vectors").and_then(Json::as_u64).unwrap() > 0);

    // XML output mode wraps the projection.
    let (status, body) = request(
        addr,
        "POST",
        "/query",
        &format!("{{\"query\": {}, \"out\": \"xml\"}}", json_str(QUERY)),
    );
    assert_eq!(status, 200);
    let parsed = json::parse(&body).unwrap();
    let xml = parsed.get("xml").and_then(Json::as_str).unwrap();
    assert!(xml.starts_with("<results>"), "xml answer: {xml}");

    // Two requests over one keep-alive connection; each response is
    // read to exactly its content-length so the second request starts
    // on a clean boundary.
    let mut stream = TcpStream::connect(addr).unwrap();
    for _ in 0..2 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: vx\r\n\r\n")
            .unwrap();
        let text = read_one_response(&mut stream);
        assert!(text.starts_with("HTTP/1.1 200"), "keep-alive reply: {text}");
    }
    drop(stream);

    shutdown(addr, worker);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reads exactly one HTTP response (headers + content-length body) from
/// a keep-alive connection, leaving the stream at the next boundary.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut bytes = Vec::new();
    let mut buffer = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut buffer).expect("read headers");
        assert!(n > 0, "connection closed mid-response");
        bytes.extend_from_slice(&buffer[..n]);
    };
    let headers = String::from_utf8_lossy(&bytes[..header_end]).into_owned();
    let content_length: usize = headers
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("content-length header");
    while bytes.len() < header_end + content_length {
        let n = stream.read(&mut buffer).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        bytes.extend_from_slice(&buffer[..n]);
    }
    String::from_utf8_lossy(&bytes[..header_end + content_length]).into_owned()
}

fn error_kind(body: &str) -> String {
    json::parse(body)
        .ok()
        .and_then(|parsed| {
            parsed
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .map(str::to_string)
        })
        .unwrap_or_else(|| panic!("not an error body: {body}"))
}

fn request_id(body: &str) -> String {
    json::parse(body)
        .ok()
        .and_then(|parsed| {
            parsed
                .get("error")
                .and_then(|e| e.get("request_id"))
                .and_then(Json::as_str)
                .map(str::to_string)
        })
        .unwrap_or_else(|| panic!("no request_id in error body: {body}"))
}

/// Serializes a string as a JSON literal (the tests hand-build bodies).
fn json_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[test]
fn reload_picks_up_appends_and_compactions() {
    use xmlvec::core::{AppendOptions, Compaction, Store};

    let dir = std::env::temp_dir().join(format!("vx-serve-{}-reload", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = xmlvec::vectorize_str("<lib><book><title>T1</title></book></lib>").unwrap();
    Store::save(&dir, &base, Compaction::None).unwrap();
    let (addr, worker) = start(vec![dir.clone()], 2);

    let xq = r#"for $b in doc("store")/lib/book return $b/title"#;
    let body = format!(
        "{{\"store\": {}, \"query\": {}}}",
        json_str(name_of(&dir)),
        json_str(xq)
    );
    let values = |answer: &str| -> Vec<String> {
        json::parse(answer)
            .unwrap()
            .get("values")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect()
    };

    let (status, answer) = request(addr, "POST", "/query", &body);
    assert_eq!(status, 200, "pre-append query: {answer}");
    assert_eq!(values(&answer), ["T1"]);

    // Append behind the server's back: the running handle keeps serving
    // the old snapshot until a reload.
    Store::append_batch(
        &dir,
        &["<lib><book><title>T2</title></book></lib>".into()],
        &AppendOptions::default(),
    )
    .unwrap();
    let (_, answer) = request(addr, "POST", "/query", &body);
    assert_eq!(values(&answer), ["T1"], "no reload yet, snapshot serves");

    let (status, answer) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 200, "reload failed: {answer}");
    let parsed = json::parse(&answer).unwrap();
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    let stores = parsed.get("stores").and_then(Json::as_array).unwrap();
    assert_eq!(
        stores[0].get("wal_pending").and_then(Json::as_u64),
        Some(1),
        "reloaded handle should carry the WAL overlay"
    );

    // The append is visible; the compiled query survived the swap (the
    // second identical request must be a cache hit, checked below).
    let (_, answer) = request(addr, "POST", "/query", &body);
    assert_eq!(values(&answer), ["T1", "T2"]);

    // Compact on disk, reload again: same answers from generation 1.
    Store::compact(&dir, Compaction::None).unwrap();
    let (status, _) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 200);
    let (_, answer) = request(addr, "POST", "/query", &body);
    assert_eq!(values(&answer), ["T1", "T2"]);
    let (_, stats) = request(addr, "GET", "/stats", "");
    let parsed = json::parse(&stats).unwrap();
    let store_stats = &parsed.get("stores").and_then(Json::as_array).unwrap()[0];
    assert_eq!(
        store_stats.get("generation").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        store_stats.get("wal_pending").and_then(Json::as_u64),
        Some(0)
    );

    let (_, stats) = request(addr, "GET", "/stats", "");
    let parsed = json::parse(&stats).unwrap();
    let server = parsed.get("server").expect("server section");
    assert_eq!(server.get("reloads").and_then(Json::as_u64), Some(2));
    assert!(
        server
            .get("query_cache_hits")
            .and_then(Json::as_u64)
            .unwrap()
            >= 3,
        "query cache must survive reloads"
    );

    shutdown(addr, worker);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The store's serve name: its directory basename.
fn name_of(dir: &std::path::Path) -> &str {
    dir.file_name().unwrap().to_str().unwrap()
}

/// Sums the `"counters"` object of a profile (or the `/stats`
/// `"engine"` object — same shape) into a name → value map.
fn counter_map(counters: &Json) -> std::collections::BTreeMap<String, u64> {
    match counters {
        Json::Object(fields) => fields
            .iter()
            .map(|(name, value)| (name.clone(), value.as_u64().expect("integral counter")))
            .collect(),
        other => panic!("not a counter object: {other:?}"),
    }
}

/// Per-request isolation: two simultaneous queries get distinct trace
/// ids, and the per-request profiles' counters sum exactly to the
/// process totals reported by `/stats` — nothing leaks between
/// concurrent runs and nothing is double-counted.
#[test]
fn concurrent_traces_are_distinct_and_counters_sum_to_totals() {
    let dir = temp_store("traces");
    let (addr, worker) = start(vec![dir.clone()], 4);

    // Two different queries run simultaneously from two clients, each
    // asking for its profile; repeat a few rounds for more interleaving.
    const ROUNDS: usize = 3;
    let queries = [
        QUERY,
        r#"for $p in doc("xk")/site/people/person return $p/name"#,
    ];
    let answers: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|xq| {
                let body = format!("{{\"query\": {}, \"profile\": true}}", json_str(xq));
                scope.spawn(move || {
                    (0..ROUNDS)
                        .map(|_| {
                            let (status, answer) = request(addr, "POST", "/query", &body);
                            assert_eq!(status, 200, "profiled query failed: {answer}");
                            answer
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut traces = std::collections::HashSet::new();
    let mut summed = std::collections::BTreeMap::new();
    for answer in answers.iter().flatten() {
        let parsed = json::parse(answer).expect("JSON answer");
        let trace = parsed
            .get("trace")
            .and_then(Json::as_str)
            .expect("trace id in answer")
            .to_string();
        assert_eq!(trace.len(), 16, "trace ids are 16 hex digits: {trace}");
        assert!(traces.insert(trace), "trace id reused across requests");
        let profile = parsed.get("profile").expect("profile requested");
        for (name, value) in counter_map(profile.get("counters").expect("counters")) {
            *summed.entry(name).or_insert(0) += value;
        }
    }

    // The process totals must be exactly the sum of the per-request
    // deltas — the server merges each profiled run's counters once.
    let (status, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&stats).unwrap();
    let totals = counter_map(parsed.get("engine").expect("engine totals"));
    // Counters that stayed 0 in every run may be absent from either
    // side's map; compare the non-zero entries both ways.
    for (name, value) in &totals {
        if *value > 0 {
            assert_eq!(
                summed.get(name),
                Some(value),
                "process total for {name} diverges from the per-request sum"
            );
        }
    }
    for (name, value) in &summed {
        if *value > 0 {
            assert_eq!(
                totals.get(name),
                Some(value),
                "per-request sum for {name} missing from process totals"
            );
        }
    }

    shutdown(addr, worker);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The slow-query flight recorder: with the threshold at 0 every query
/// is "slow", so `/debug/slow` must show the query with its rendered
/// plan, join strategies, profile, and the same trace id the client saw.
#[test]
fn slow_queries_enter_the_flight_recorder_with_plan_and_profile() {
    let dir = temp_store("slowlog");
    let options = ServeOptions {
        slow_ms: 0,
        slow_log_capacity: 8,
        ..ServeOptions::default()
    };
    let (addr, worker) = start_with(vec![dir.clone()], 2, &options);

    let body = format!("{{\"query\": {}}}", json_str(QUERY));
    let (status, answer) = request(addr, "POST", "/query", &body);
    assert_eq!(status, 200, "query failed: {answer}");
    let trace = json::parse(&answer)
        .unwrap()
        .get("trace")
        .and_then(Json::as_str)
        .expect("trace id")
        .to_string();

    let (status, slow) = request(addr, "GET", "/debug/slow", "");
    assert_eq!(status, 200);
    let parsed = json::parse(&slow).unwrap();
    assert_eq!(parsed.get("threshold_ms").and_then(Json::as_u64), Some(0));
    assert_eq!(parsed.get("capacity").and_then(Json::as_u64), Some(8));
    let entries = parsed.get("entries").and_then(Json::as_array).unwrap();
    assert_eq!(entries.len(), 1, "one query, one slow entry: {slow}");
    let entry = &entries[0];
    assert_eq!(entry.get("trace").and_then(Json::as_str), Some(&*trace));
    assert_eq!(entry.get("query").and_then(Json::as_str), Some(QUERY));
    let plan = entry.get("plan").and_then(Json::as_str).expect("plan text");
    assert!(plan.contains("variables:"), "rendered plan: {plan}");
    let profile = entry.get("profile").expect("captured profile");
    assert!(
        !counter_map(profile.get("counters").expect("counters")).is_empty(),
        "profile counters present"
    );
    let strategies = entry.get("strategies").and_then(Json::as_array).unwrap();
    // The single-variable projection has no join edge; the field must
    // still be present (empty) so dashboards can rely on the shape.
    assert!(strategies.is_empty(), "no joins in {QUERY}");

    // Ring bound: run more queries than the capacity holds, confirm the
    // recorder keeps the most recent `capacity` and counts the rest.
    for _ in 0..12 {
        let (status, _) = request(addr, "POST", "/query", &body);
        assert_eq!(status, 200);
    }
    let (_, slow) = request(addr, "GET", "/debug/slow", "");
    let parsed = json::parse(&slow).unwrap();
    assert_eq!(
        parsed
            .get("entries")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        8,
        "ring keeps exactly its capacity"
    );
    assert_eq!(parsed.get("recorded").and_then(Json::as_u64), Some(13));

    // A join query records its chosen strategies.
    let join = r#"for $a in doc("xk")/site/people/person,
                      $b in doc("xk")/site/people/person
                  where $a/@id = $b/@id
                  return $a/name"#;
    let body = format!("{{\"query\": {}}}", json_str(join));
    let (status, answer) = request(addr, "POST", "/query", &body);
    assert_eq!(status, 200, "join query failed: {answer}");
    let (_, slow) = request(addr, "GET", "/debug/slow", "");
    let parsed = json::parse(&slow).unwrap();
    let entries = parsed.get("entries").and_then(Json::as_array).unwrap();
    let last = entries.last().expect("join entry recorded");
    let strategies = last.get("strategies").and_then(Json::as_array).unwrap();
    assert_eq!(strategies.len(), 1, "one join edge: {slow}");
    assert!(
        ["hash", "inl", "merge"].contains(&strategies[0].as_str().expect("strategy name")),
        "strategy is one of the planner's: {slow}"
    );

    shutdown(addr, worker);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /metrics` serves a valid Prometheus text exposition whose
/// counters agree with the JSON `/stats` document.
#[test]
fn metrics_exposition_is_valid_and_consistent_with_stats() {
    let dir = temp_store("prom");
    let (addr, worker) = start(vec![dir.clone()], 2);

    let body = format!("{{\"query\": {}}}", json_str(QUERY));
    for _ in 0..3 {
        let (status, _) = request(addr, "POST", "/query", &body);
        assert_eq!(status, 200);
    }
    // One error, so the error counter is non-zero in the exposition.
    let (status, _) = request(addr, "POST", "/query", "{not json");
    assert_eq!(status, 400);

    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let series = xmlvec::obs::prom::validate_exposition(&text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    assert!(
        series > 20,
        "expected a rich exposition, got {series} series"
    );

    for family in [
        "vx_serve_requests_total",
        "vx_serve_errors_total",
        "vx_serve_query_cache_hits_total",
        "vx_serve_request_seconds_bucket",
        "vx_engine_occ_rows_total",
        "vx_store_generation",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(family)),
            "missing family {family} in exposition:\n{text}"
        );
    }

    // Cross-check two counters against /stats, queried *after* the
    // exposition so the stats can only be >= the scraped values.
    let scraped_errors = prom_value(&text, "vx_serve_errors_total");
    let scraped_hits = prom_value(&text, "vx_serve_query_cache_hits_total");
    let (_, stats) = request(addr, "GET", "/stats", "");
    let parsed = json::parse(&stats).unwrap();
    let server = parsed.get("server").unwrap();
    assert_eq!(
        server.get("errors").and_then(Json::as_u64),
        Some(scraped_errors)
    );
    assert_eq!(
        server.get("query_cache_hits").and_then(Json::as_u64),
        Some(scraped_hits)
    );

    shutdown(addr, worker);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The value of an unlabelled counter series in a Prometheus text
/// exposition.
fn prom_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            let rest = line.strip_prefix(name)?;
            let value = rest.split_whitespace().next()?;
            value.parse::<f64>().ok().map(|v| v as u64)
        })
        .unwrap_or_else(|| panic!("no series {name} in:\n{text}"))
}
