//! Randomized differential fuzzer: seeded query generation driven by
//! each store's *actual* path summary, checked against the DOM oracle
//! under every join strategy × structural-index mode.
//!
//! Every generated query is valid XQ[*,//] by construction — steps are
//! derived from real root-to-text tag paths reported by the path
//! summary, then mutated into wildcards (`*`), descendant steps (`//`),
//! literal and `exists()` filters (literals sampled from the store's
//! own vectors), and two-variable equality joins. The oracle
//! ([`xmlvec::engine::naive_eval`]) defines ground truth, so mutations
//! that widen or empty a match set are still exact checks.
//!
//! Knobs (both read once, at test start):
//!
//! * `VX_FUZZ_SEED`  — u64 generator seed (default `0xF022`). CI runs a
//!   fixed seed plus the run number, like the crash-recovery fuzzer.
//! * `VX_FUZZ_CASES` — cases per corpus (default 200).
//!
//! On failure the panic message carries `seed=… corpus=… case=…` and the
//! full query text — replaying is `VX_FUZZ_SEED=<seed> cargo test -q
//! --test fuzz_queries`.

use xmlvec::core::{reconstruct, vectorize, VecDoc};
use xmlvec::data::Rng;
use xmlvec::engine::{naive_eval, NaiveOutput};
use xmlvec::skeleton::PathIndex;
use xmlvec::xml::{write_document, Document, WriteOptions};
use xmlvec::{JoinStrategy, Query, QueryOutput, RunOptions};

const STRATEGIES: [JoinStrategy; 3] = [
    JoinStrategy::Hash,
    JoinStrategy::IndexNestedLoop,
    JoinStrategy::SortMerge,
];

struct FuzzDoc {
    name: &'static str,
    dom: Document,
    vec: VecDoc,
    /// Root-to-text tag paths (length ≥ 2: root plus at least one step),
    /// in first-occurrence document order — the generator's step pool.
    paths: Vec<Vec<String>>,
}

impl FuzzDoc {
    fn new(name: &'static str, dom: Document) -> FuzzDoc {
        let vec = vectorize(&dom).expect(name);
        let root = vec.root.expect(name);
        let index = PathIndex::new(&vec.skeleton, root);
        let paths: Vec<Vec<String>> = index
            .text_paths(&vec.skeleton)
            .into_iter()
            .map(|(rel, _)| {
                rel.into_iter()
                    .map(|n| vec.skeleton.name(n).to_string())
                    .collect::<Vec<String>>()
            })
            .filter(|p| p.len() >= 2)
            .collect();
        assert!(!paths.is_empty(), "{name} has no usable text paths");
        FuzzDoc {
            name,
            dom,
            vec,
            paths,
        }
    }

    /// A literal sampled from the vector behind `path`, restricted to
    /// values that round-trip through the query surface syntax.
    fn literal(&self, rng: &mut Rng, path: &[String]) -> Option<String> {
        let vector = self.vec.vector(&path.join("/"))?;
        if vector.values.is_empty() {
            return None;
        }
        // A handful of draws; most generated values are plain ASCII.
        for _ in 0..4 {
            let raw = &vector.values[rng.below(vector.values.len() as u64) as usize];
            if let Ok(text) = std::str::from_utf8(raw) {
                if !text.is_empty()
                    && text
                        .chars()
                        .all(|c| c != '"' && c != '\\' && c != '<' && c != '&' && !c.is_control())
                {
                    return Some(text.to_string());
                }
            }
        }
        None
    }
}

/// Renders `segs` as a step string, mutating toward the wider fragment:
/// interior segments may be dropped (forcing `//` on the next kept
/// step), kept steps may become descendant steps, and non-attribute
/// names may become `*`. The last segment is always kept so the path
/// stays anchored at a real text parent or leaf.
fn render_steps(rng: &mut Rng, segs: &[String]) -> String {
    let mut out = String::new();
    let mut gap = false;
    for (i, seg) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        if !last && rng.below(100) < 18 {
            gap = true;
            continue;
        }
        let descend = gap || rng.below(100) < 12;
        gap = false;
        let wild = !seg.starts_with('@') && rng.below(100) < 10;
        out.push_str(if descend { "//" } else { "/" });
        out.push_str(if wild { "*" } else { seg });
    }
    out
}

/// Picks a path from `doc` whose first `prefix_len` segments equal
/// `prefix` and which extends past it — the pool for filters that must
/// be evaluable relative to an already-bound variable.
fn extension_of<'a>(rng: &mut Rng, doc: &'a FuzzDoc, prefix: &[String]) -> Option<&'a Vec<String>> {
    let candidates: Vec<&Vec<String>> = doc
        .paths
        .iter()
        .filter(|p| p.len() > prefix.len() && p[..prefix.len()] == *prefix)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len() as u64) as usize])
}

/// One generated query: the source text plus the docs it draws from.
fn gen_query(rng: &mut Rng, docs: &[FuzzDoc], primary: usize) -> String {
    let a = &docs[primary];
    let path = &a.paths[rng.below(a.paths.len() as u64) as usize];
    // Split into a variable binding prefix and a return suffix; the
    // prefix keeps at least the root, the suffix at least the leaf.
    let j = rng.range(1, path.len() as u64 - 1) as usize;
    let var = format!("doc(\"{}\"){}", a.name, render_steps(rng, &path[..j]));
    let ret = render_steps(rng, &path[j..]);

    match rng.below(100) {
        // Plain projection chain.
        0..=39 => format!("for $a in {var} return $a{ret}"),
        // Literal equality filter; literal sampled from the store's own
        // vector (or a guaranteed miss, to pin empty results).
        40..=64 => {
            let filter = extension_of(rng, a, &path[..j]).unwrap_or(path);
            let suffix = filter[j..].join("/");
            let value = if rng.below(100) < 20 {
                "zz-no-such-value".to_string()
            } else {
                match a.literal(rng, filter) {
                    Some(v) => v,
                    None => "zz-no-such-value".to_string(),
                }
            };
            format!("for $a in {var} where $a/{suffix} = \"{value}\" return $a{ret}")
        }
        // Existential filter.
        65..=77 => {
            let filter = extension_of(rng, a, &path[..j]).unwrap_or(path);
            let suffix = filter[j..].join("/");
            format!("for $a in {var} where exists($a/{suffix}) return $a{ret}")
        }
        // Two-variable equality join. Half the time a self-join on the
        // same suffix (guaranteed matches); otherwise arbitrary pairs,
        // which are usually sparse or empty — both are ground-truthed.
        _ => {
            let suffix_a = path[j..].join("/");
            if rng.below(2) == 0 {
                format!(
                    "for $a in {var}, $b in doc(\"{}\"){} \
                     where $a/{suffix_a} = $b/{suffix_a} return $b{ret}",
                    a.name,
                    render_steps(rng, &path[..j]),
                )
            } else {
                let b = &docs[rng.below(docs.len() as u64) as usize];
                let path_b = &b.paths[rng.below(b.paths.len() as u64) as usize];
                let k = rng.range(1, path_b.len() as u64 - 1) as usize;
                format!(
                    "for $a in {var}, $b in doc(\"{}\"){} \
                     where $a/{suffix_a} = $b/{} return $b{}",
                    b.name,
                    render_steps(rng, &path_b[..k]),
                    path_b[k..].join("/"),
                    render_steps(rng, &path_b[k..]),
                )
            }
        }
    }
}

fn engine_xml(doc: &VecDoc, label: &str) -> String {
    write_document(&reconstruct(doc).expect(label), &WriteOptions::compact())
}

/// Oracle-vs-engine equality, byte-for-byte (documents compare by
/// compact serialization after reconstructing the engine's output).
fn assert_matches_oracle(got: &QueryOutput, expected: &NaiveOutput, label: &str) {
    match (got, expected) {
        (QueryOutput::Values(g), NaiveOutput::Values(e)) => {
            assert_eq!(g, e, "value mismatch [{label}]");
        }
        (QueryOutput::Document(g), NaiveOutput::Document(e)) => {
            let opts = WriteOptions::compact();
            assert_eq!(
                engine_xml(g, label),
                write_document(e, &opts),
                "document mismatch [{label}]"
            );
        }
        _ => panic!("output shape mismatch [{label}]"),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a u64, got {v:?}")),
        Err(_) => default,
    }
}

#[test]
fn generated_queries_agree_with_the_oracle_under_every_mode() {
    let seed = env_u64("VX_FUZZ_SEED", 0xF022);
    let cases = env_u64("VX_FUZZ_CASES", 200);
    let docs = vec![
        FuzzDoc::new("ml", xmlvec::data::medline(11, 24)),
        FuzzDoc::new("sky", xmlvec::data::skyserver(23, 30)),
        FuzzDoc::new("xk", xmlvec::data::xmark(7, 16)),
        FuzzDoc::new("tb", xmlvec::data::treebank(5, 24)),
    ];
    let doms: Vec<(&str, &Document)> = docs.iter().map(|d| (d.name, &d.dom)).collect();
    let vecs: Vec<(&str, &VecDoc)> = docs.iter().map(|d| (d.name, &d.vec)).collect();

    let mut rng = Rng::new(seed);
    for primary in 0..docs.len() {
        for case in 0..cases {
            let src = gen_query(&mut rng, &docs, primary);
            let tag = format!(
                "seed={seed} corpus={} case={case} query={src}",
                docs[primary].name
            );
            let parsed = xmlvec::xquery::parse_query(&src)
                .unwrap_or_else(|e| panic!("generator emitted unparseable query: {e} [{tag}]"));
            let expected =
                naive_eval(&parsed, &doms).unwrap_or_else(|e| panic!("oracle failed: {e} [{tag}]"));
            let query = Query::new(&src).unwrap_or_else(|e| panic!("compile failed: {e} [{tag}]"));
            for strategy in STRATEGIES {
                for struct_index in [true, false] {
                    let options = RunOptions {
                        strategy: Some(strategy),
                        struct_index: Some(struct_index),
                        ..RunOptions::default()
                    };
                    let label = format!(
                        "{tag} strategy={} struct_index={struct_index}",
                        strategy.name()
                    );
                    let got = query
                        .run_with(&vecs, &options)
                        .unwrap_or_else(|e| panic!("engine failed: {e} [{label}]"))
                        .output;
                    assert_matches_oracle(&got, &expected, &label);
                }
            }
        }
    }
}
