//! Concurrency differentials for the shared-immutable store refactor.
//!
//! One [`StoreHandle`] per bench corpus is shared (by `Arc`-bump clone)
//! across 8 threads, each running the full table3 workload; every
//! thread's output must be byte-identical to the serial baseline. A
//! second differential pins the parallel per-document collection path:
//! a two-document join evaluated with the fan-out enabled must match
//! the serial pass byte for byte.

use std::collections::HashMap;
use xmlvec::core::{vectorize, StoreHandle};
use xmlvec::engine::Query;
use xmlvec::{QueryOutput, RunOptions};

fn serial() -> RunOptions {
    RunOptions {
        parallel: false,
        ..RunOptions::default()
    }
}

/// Tiny corpora — large enough that every workload query returns rows,
/// small enough to keep the 8×13 query matrix fast in CI.
fn tiny_handles() -> Vec<StoreHandle> {
    let scales: HashMap<&str, usize> = [("xk", 80), ("tb", 160), ("ml", 160), ("ss", 160)].into();
    xmlvec::bench::DATASETS
        .iter()
        .map(|&dataset| {
            let doc = xmlvec::bench::corpus(dataset, scales[dataset]);
            let vec_doc = vectorize(&doc).expect("bench corpora vectorize");
            StoreHandle::from_doc(dataset, vec_doc).expect("handle from corpus")
        })
        .collect()
}

/// Canonical bytes of an output: raw values for projections, compact
/// XML for constructor results. "Identical" in these tests means these
/// bytes, not a lossy string view.
fn canon(output: &QueryOutput) -> Vec<u8> {
    match output {
        QueryOutput::Values(values) => {
            let mut bytes = Vec::new();
            for value in values {
                bytes.extend_from_slice(value);
                bytes.push(b'\n');
            }
            bytes
        }
        QueryOutput::Document(_) => output
            .to_xml()
            .expect("constructor output serializes")
            .into_bytes(),
    }
}

/// The engine auto-disables the multi-document fan-out on single-core
/// hosts; the differentials here are about the scoped-thread merge
/// path, so they force it regardless of the machine CI runs on. Every
/// test sets the same value, so concurrent test threads don't race.
fn force_parallel() {
    std::env::set_var("VX_PARALLEL", "force");
}

#[test]
fn eight_threads_match_serial_on_the_workload() {
    force_parallel();
    let handles = tiny_handles();
    let specs = xmlvec::data::workload();

    // Compile once, run everywhere: the queries are shared across all 8
    // threads, exactly as `vx serve`'s compiled-query cache shares them.
    let compiled: Vec<(&str, Query)> = specs
        .iter()
        .map(|spec| (spec.name, Query::new(spec.xq).expect(spec.name)))
        .collect();

    let serial: Vec<Vec<u8>> = compiled
        .iter()
        .map(|(name, query)| canon(&query.run_with(&handles, &serial()).expect(name).output))
        .collect();
    assert!(
        serial.iter().any(|bytes| !bytes.is_empty()),
        "workload should produce rows at test scale"
    );

    std::thread::scope(|scope| {
        for thread in 0..8 {
            let compiled = &compiled;
            let serial = &serial;
            let handles = &handles;
            scope.spawn(move || {
                for ((name, query), expected) in compiled.iter().zip(serial) {
                    let output = query
                        .run_with(handles, &RunOptions::default())
                        .unwrap_or_else(|e| panic!("thread {thread}, {name}: {e}"))
                        .output;
                    assert_eq!(
                        &canon(&output),
                        expected,
                        "thread {thread}: {name} diverged from the serial run"
                    );
                }
            });
        }
    });
}

#[test]
fn parallel_multi_document_collection_matches_serial() {
    force_parallel();
    // Two handles over the same XMark corpus under different names: the
    // self-join references both documents, so the default options take
    // the scoped-thread collection path while `parallel: false` walks
    // the documents one after the other.
    let doc = xmlvec::bench::corpus("xk", 60);
    let vec_doc = vectorize(&doc).expect("xmark vectorizes");
    let handles = vec![
        StoreHandle::from_doc("a", vec_doc.clone()).unwrap(),
        StoreHandle::from_doc("b", vec_doc).unwrap(),
    ];
    let query = Query::new(
        r#"for $p in doc("a")/site/people/person,
               $q in doc("b")/site/people/person
           where $p/@id = $q/@id
           return $p/name"#,
    )
    .unwrap();

    let serial = canon(&query.run_with(&handles, &serial()).unwrap().output);
    let parallel = canon(
        &query
            .run_with(&handles, &RunOptions::default())
            .unwrap()
            .output,
    );
    assert!(!serial.is_empty(), "self-join should match every person");
    assert_eq!(
        parallel, serial,
        "parallel collection must be byte-identical"
    );
}

#[test]
fn handle_clones_share_one_store() {
    let doc = xmlvec::bench::corpus("xk", 20);
    let handle = StoreHandle::from_doc("xk", vectorize(&doc).unwrap()).unwrap();
    let query = Query::new(r#"for $i in doc("xk")/site/regions/*/item return $i/name"#).unwrap();
    let expected = canon(
        &query
            .run_with(&handle, &RunOptions::default())
            .unwrap()
            .output,
    );

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let clone = handle.clone();
            let query = &query;
            let expected = &expected;
            scope.spawn(move || {
                assert_eq!(
                    &canon(
                        &query
                            .run_with(&clone, &RunOptions::default())
                            .unwrap()
                            .output
                    ),
                    expected
                );
            });
        }
    });
}
