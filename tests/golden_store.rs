//! Golden-store integration tests.
//!
//! `bench_results/stores/` holds stores produced by an earlier build of
//! this system. They are damaged in a known way: a byte-level sanitizer
//! dropped every byte ≥ 0x80 that did not form a valid 2-byte UTF-8
//! sequence, truncating multi-byte varints (and `ml-*` lost their
//! `v000006.vec` outright). These tests pin down that the current readers
//! (a) still understand the formats, (b) salvage everything the damage
//! left intact, and (c) can rebuild a well-formed document from what
//! remains. Everything here is strictly read-only on the checked-in
//! artifacts.

use std::path::{Path, PathBuf};
use xmlvec::core::Store;
use xmlvec::vector::Vector;

fn store_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("bench_results/stores")
        .join(name)
}

#[test]
fn ml_4000_catalog_and_vectors_agree() {
    let salvage = Store::open_salvage(&store_dir("ml-4000")).unwrap();

    // Catalog facts (plain JSON, undamaged).
    assert_eq!(salvage.catalog.vectors.len(), 11);
    assert_eq!(salvage.catalog.node_count, 168_129);
    assert_eq!(salvage.catalog.text_bytes, 1_620_783);
    assert_eq!(
        salvage.catalog.vectors[0].path,
        "MedlineCitationSet/MedlineCitation/PMID"
    );

    // The seed capture lost the AbstractText vector; nothing else.
    assert_eq!(salvage.missing_files, vec!["v000006.vec".to_string()]);

    // Every surviving vector either decodes to exactly the catalog count
    // or is explicitly reported damaged — never silently short.
    for entry in &salvage.catalog.vectors {
        if salvage.missing_files.contains(&entry.file) {
            continue;
        }
        let damaged = salvage.damaged_files.iter().any(|(f, _)| f == &entry.file);
        let loaded = salvage.doc.vector(&entry.path).unwrap().values.len() as u64;
        assert!(
            (damaged && loaded == 0) || loaded == entry.count,
            "{}: loaded {loaded}, catalog {}, damaged {damaged}",
            entry.file,
            entry.count
        );
    }

    // Short-record vectors survived the sanitizer wholesale: PMIDs are
    // 8-digit strings, languages are 3-letter codes.
    let pmids = &salvage
        .doc
        .vector("MedlineCitationSet/MedlineCitation/PMID")
        .unwrap()
        .values;
    assert_eq!(pmids.len(), 4000);
    assert!(pmids
        .iter()
        .all(|v| v.len() == 8 && v.iter().all(u8::is_ascii_digit)));
    let languages = &salvage
        .doc
        .vector("MedlineCitationSet/MedlineCitation/Language")
        .unwrap()
        .values;
    assert!(languages.iter().all(|v| v.len() == 3));
}

#[test]
fn ml_4000_skeleton_decodes_and_reconstructs() {
    let salvage = Store::open_salvage(&store_dir("ml-4000")).unwrap();

    // The lenient skeleton reader must recover the full name table even
    // though the root record's edge list is truncated.
    let names = salvage.doc.skeleton.names();
    for expected in [
        "MedlineCitationSet",
        "MedlineCitation",
        "PMID",
        "Language",
        "Article",
        "ArticleTitle",
        "AuthorList",
        "Author",
        "LastName",
        "Initials",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing name {expected:?} in {names:?}"
        );
    }
    assert!(!salvage.skeleton_report.is_clean());

    // The chosen root must be the document element.
    let root = salvage.doc.root.unwrap();
    let root_name = salvage.doc.skeleton.node(root).name.unwrap();
    assert_eq!(salvage.doc.skeleton.name(root_name), "MedlineCitationSet");

    // Reconstruction of the salvaged (S, V) must yield well-formed XML:
    // it re-parses, and its root is the MedLine document element.
    let (document, report) = xmlvec::core::reconstruct_salvage(&salvage.doc).unwrap();
    assert_eq!(document.root.name, "MedlineCitationSet");
    assert!(document.root.child("MedlineCitation").is_some());
    let text = xmlvec::xml::write_document(&document, &xmlvec::xml::WriteOptions::compact());
    let reparsed = xmlvec::xml::parse(&text).unwrap();
    assert_eq!(reparsed.root.name, "MedlineCitationSet");
    // The store is damaged, so salvage is lossy — but it must say so.
    let _ = report;
}

#[test]
fn ml_4000_text_paths_are_all_cataloged() {
    let salvage = Store::open_salvage(&store_dir("ml-4000")).unwrap();
    let root = salvage.doc.root.unwrap();
    let skeleton = &salvage.doc.skeleton;
    let index = xmlvec::skeleton::PathIndex::new(skeleton, root);
    let catalog_paths: Vec<&str> = salvage
        .catalog
        .vectors
        .iter()
        .map(|v| v.path.as_str())
        .collect();
    for (path, _count) in index.text_paths(skeleton) {
        let joined = path
            .iter()
            .map(|&id| skeleton.name(id))
            .collect::<Vec<_>>()
            .join("/");
        assert!(
            catalog_paths.contains(&joined.as_str()),
            "skeleton path {joined} not in catalog"
        );
    }
}

#[test]
fn ml_20000_spot_check() {
    let salvage = Store::open_salvage(&store_dir("ml-20000")).unwrap();
    assert_eq!(salvage.catalog.node_count, 839_479);
    assert_eq!(salvage.missing_files, vec!["v000006.vec".to_string()]);
    let pmids = &salvage
        .doc
        .vector("MedlineCitationSet/MedlineCitation/PMID")
        .unwrap()
        .values;
    assert_eq!(pmids.len(), 20_000);
}

#[test]
fn ss_1500_compact_dictionary_vector_decodes() {
    // v000008.vec (`…/row/type`) is a version-2 dictionary vector; its
    // dictionary entries and 1-byte codes are all < 0x80, so the data
    // survived sanitization completely (only the trailer is damaged —
    // hence the salvage reader, with the count from the catalog).
    let path = store_dir("ss-1500-compact").join("v000008.vec");
    let vector = Vector::open_salvage(&path, 1500).unwrap();
    assert_eq!(vector.len(), 1500);
    assert_eq!(vector.stats().version, 2);
    let mut distinct: Vec<Vec<u8>> = Vec::new();
    for value in vector.iter() {
        assert_eq!(value.len(), 1);
        assert!(value[0].is_ascii_digit());
        if !distinct.contains(&value.to_vec()) {
            distinct.push(value.to_vec());
        }
    }
    assert_eq!(distinct.len(), 7);
}

/// Pre-v9 stores predate the `index.vxpi` structural-index section.
/// The checked-in golden stores must carry no such file (pinning what
/// "pre-v9" means), still open through the salvage path, and a modern
/// store whose `index.vxpi` is removed must open all the same — the
/// handle rebuilds the structural index from the skeleton and answers
/// queries identically.
#[test]
fn stores_without_a_structural_index_still_open() {
    use xmlvec::core::{vectorize, Compaction, StoreHandle};
    use xmlvec::{Query, RunOptions};

    for name in ["ml-4000", "ml-20000", "ss-1500-compact"] {
        assert!(
            !store_dir(name).join("index.vxpi").exists(),
            "{name} is a pre-v9 golden store and must not grow an index.vxpi"
        );
        Store::open_salvage(&store_dir(name)).unwrap();
    }

    let dir = std::env::temp_dir().join(format!("vx-golden-vxpi-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let doc = xmlvec::data::medline(3, 40);
    Store::save(&dir, &vectorize(&doc).unwrap(), Compaction::Auto).unwrap();
    assert!(
        dir.join("index.vxpi").exists(),
        "v9 saves persist the index"
    );

    let src = r#"for $c in doc("ml")/MedlineCitationSet/MedlineCitation return $c/PMID"#;
    let query = Query::new(src).unwrap();
    let with_index = StoreHandle::open(&dir).unwrap();
    assert!(with_index.structural_loaded());
    let expected = query
        .run_with(&with_index, &RunOptions::default())
        .unwrap()
        .output
        .strings();
    assert_eq!(expected.len(), 40);

    std::fs::remove_file(dir.join("index.vxpi")).unwrap();
    let rebuilt = StoreHandle::open(&dir).unwrap();
    assert!(
        !rebuilt.structural_loaded(),
        "no persisted section — must fall back to rebuild-on-open"
    );
    let got = query
        .run_with(&rebuilt, &RunOptions::default())
        .unwrap()
        .output
        .strings();
    assert_eq!(got, expected);
    let _ = std::fs::remove_dir_all(&dir);
}
