//! Property-style round-trip tests.
//!
//! The build environment is fully offline, so the `proptest` crate is
//! unavailable; this is a hand-rolled equivalent — a deterministic
//! seeded generator of random documents plus explicit laws checked over
//! a few hundred cases. Failures print the seed, which reproduces the
//! exact document.

use xmlvec::core::{reconstruct, vectorize, Compaction, Store};
use xmlvec::data::Rng;
use xmlvec::xml::{Document, Element, Node};

const TAGS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
const WORDS: [&str; 5] = ["x", "yy", "zzz", "", "mixed content"];

/// A random element of bounded depth/width. Shapes are biased towards
/// repetition so hash-consing and run-length edges actually trigger.
fn random_element(rng: &mut Rng, depth: u32) -> Element {
    let mut element = Element::new(TAGS[rng.below(TAGS.len() as u64) as usize]);
    if rng.below(4) == 0 {
        element = element.with_attr("id", format!("{}", rng.below(100)));
    }
    if rng.below(8) == 0 {
        element = element.with_attr("k", WORDS[rng.below(5) as usize]);
    }
    let children = rng.below(5);
    for _ in 0..children {
        // Half the time, repeat the previous child to exercise runs.
        if rng.below(2) == 0 && !element.children.is_empty() {
            let last = element.children.last().unwrap().clone();
            element.children.push(last);
            continue;
        }
        match rng.below(3) {
            0 if depth > 0 => {
                let child = random_element(rng, depth - 1);
                element.children.push(child.into_node());
            }
            1 => element
                .children
                .push(Node::Text(WORDS[rng.below(5) as usize].to_string())),
            _ => {
                let child = Element::new(TAGS[rng.below(6) as usize])
                    .with_text(format!("{}", rng.below(10)));
                element.children.push(child.into_node());
            }
        }
    }
    element
}

fn random_document(seed: u64) -> Document {
    let mut rng = Rng::new(seed);
    Document::from_root(random_element(&mut rng, 4))
}

/// Law: `reconstruct(vectorize(T)) == T` for every comment-free tree.
#[test]
fn vectorize_reconstruct_is_identity() {
    for seed in 0..200 {
        let doc = random_document(seed);
        let vec_doc = vectorize(&doc).unwrap_or_else(|e| panic!("seed {seed}: vectorize: {e}"));
        let back =
            reconstruct(&vec_doc).unwrap_or_else(|e| panic!("seed {seed}: reconstruct: {e}"));
        assert_eq!(
            doc.root, back.root,
            "seed {seed}: round trip changed the tree"
        );
        // Each attribute becomes a synthetic `@name` element plus a text
        // marker in the skeleton; the DOM count excludes attributes.
        assert_eq!(
            vec_doc.node_count(),
            doc.root.node_count() + 2 * attr_count(&doc.root),
            "seed {seed}: node accounting"
        );
    }
}

fn attr_count(element: &Element) -> u64 {
    element.attributes.len() as u64 + element.child_elements().map(attr_count).sum::<u64>()
}

/// Law: the skeleton arena never holds two identical nodes, and interning
/// the same subtree twice yields the same `NodeId`.
#[test]
fn hash_consing_is_canonical() {
    for seed in 0..200 {
        let doc = random_document(seed);
        let vec_doc = vectorize(&doc).unwrap();
        assert_eq!(
            vec_doc.skeleton.duplicate_nodes(),
            0,
            "seed {seed}: duplicate DAG nodes"
        );
    }

    // Two copies of one subtree under different parents share a node.
    let doc = xmlvec::xml::parse("<r><p><s><t>v</t></s></p><q><s><t>v</t></s></q></r>").unwrap();
    let vec_doc = vectorize(&doc).unwrap();
    let root = vec_doc.root.unwrap();
    let skeleton = &vec_doc.skeleton;
    let kids: Vec<_> = skeleton.node(root).edges.iter().map(|e| e.child).collect();
    assert_eq!(kids.len(), 2);
    let s_under_p = skeleton.node(kids[0]).edges[0].child;
    let s_under_q = skeleton.node(kids[1]).edges[0].child;
    assert_eq!(
        s_under_p, s_under_q,
        "identical subtrees must share one node"
    );
}

/// Law: `reconstruct(vectorize(T)) == T` for every corpus generator at
/// several seeds and sizes — XMark and TreeBank exercise shapes the
/// random documents above cannot (id-reference attributes, a recursive
/// grammar with thousands of distinct paths).
#[test]
fn corpus_generators_round_trip() {
    type Gen = fn(u64, usize) -> Document;
    let generators: [(&str, Gen); 4] = [
        ("xmark", |s, n| xmlvec::data::xmark(s, n)),
        ("treebank", |s, n| xmlvec::data::treebank(s, n)),
        ("medline", |s, n| xmlvec::data::medline(s, n)),
        ("skyserver", |s, n| xmlvec::data::skyserver(s, n)),
    ];
    let opts = xmlvec::xml::WriteOptions::compact();
    for (name, generate) in generators {
        for seed in [0, 1, 7, 42, 1_000_003] {
            let doc = generate(seed, 30);
            let vec_doc =
                vectorize(&doc).unwrap_or_else(|e| panic!("{name} seed {seed}: vectorize: {e}"));
            let back = reconstruct(&vec_doc)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: reconstruct: {e}"));
            assert_eq!(doc.root, back.root, "{name} seed {seed}: tree changed");
            // The serialized forms agree byte for byte, so a store built
            // from the writer's output reconstructs to identical text —
            // the property the CLI round-trip tests rely on.
            assert_eq!(
                xmlvec::xml::write_document(&doc, &opts),
                xmlvec::xml::write_document(&back, &opts),
                "{name} seed {seed}: serialization changed"
            );
        }
    }
}

/// Law: generated corpora survive the full persist/reload cycle under
/// both compaction policies (TreeBank makes this a many-small-vectors
/// stress test; XMark a many-attributes one).
#[test]
fn corpus_store_round_trip() {
    let base = std::env::temp_dir().join(format!("vx-prop-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for (name, doc) in [
        ("xmark", xmlvec::data::xmark(13, 24)),
        ("treebank", xmlvec::data::treebank(13, 40)),
    ] {
        let vec_doc = vectorize(&doc).unwrap();
        for (mode, sub) in [(Compaction::None, "plain"), (Compaction::Auto, "auto")] {
            let dir = base.join(format!("{name}-{sub}"));
            Store::save(&dir, &vec_doc, mode).unwrap_or_else(|e| panic!("{name} {sub}: save: {e}"));
            let (loaded, _catalog) =
                Store::open(&dir).unwrap_or_else(|e| panic!("{name} {sub}: open: {e}"));
            let back = reconstruct(&loaded).unwrap();
            assert_eq!(doc.root, back.root, "{name} {sub}: store round trip");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Law: persisting and reloading a store is lossless, for both plain and
/// dictionary vector encodings.
#[test]
fn store_round_trip_is_lossless() {
    let base = std::env::temp_dir().join(format!("vx-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for seed in 0..25 {
        let doc = random_document(seed);
        let vec_doc = vectorize(&doc).unwrap();
        for (mode, sub) in [(Compaction::None, "plain"), (Compaction::Auto, "auto")] {
            let dir = base.join(format!("{seed}-{sub}"));
            Store::save(&dir, &vec_doc, mode)
                .unwrap_or_else(|e| panic!("seed {seed} {sub}: save: {e}"));
            let (loaded, _catalog) =
                Store::open(&dir).unwrap_or_else(|e| panic!("seed {seed} {sub}: open: {e}"));
            let back = reconstruct(&loaded).unwrap();
            assert_eq!(doc.root, back.root, "seed {seed} {sub}: store round trip");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
